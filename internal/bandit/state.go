package bandit

import (
	"fmt"

	"omg/internal/simrand"
)

// This file makes selector round state exportable. The paper's selectors
// carry two kinds of state across labeling rounds: algorithm state (BAL's
// previous-round firing counts, CC-MAB's per-cube reward estimates) and
// RNG state. Algorithm state serialises cleanly; the simrand generator's
// internals do not. RoundSelector therefore fixes a protocol where the
// RNG is re-derived from (seed, round) at every round and only the
// algorithm state persists — selection becomes a pure function of
// (seed, round, candidates, restored state), which is what lets a
// collector-hosted labeling service recover byte-identically after a
// crash and lets tests replay a reference trace against it.

// BALState is BAL's cross-round algorithm state in serialisable form.
type BALState struct {
	// PrevFired is the previous round's per-assertion firing counts, the
	// input to the marginal-reduction computation.
	PrevFired []float64 `json:"prev_fired,omitempty"`
	// HasPrev reports whether any round has completed (round 1 samples
	// uniformly from assertions regardless of PrevFired).
	HasPrev bool `json:"has_prev,omitempty"`
	// FellBack lists the rounds where BAL deferred to its fallback.
	FellBack []int `json:"fell_back,omitempty"`
}

// StateSnapshot exports the selector's cross-round algorithm state. RNG
// state is deliberately excluded; see RoundSelector for the reseeding
// protocol that makes that sound.
func (b *BAL) StateSnapshot() BALState {
	return BALState{
		PrevFired: append([]float64(nil), b.prevFired...),
		HasPrev:   b.hasPrev,
		FellBack:  append([]int(nil), b.fellBack...),
	}
}

// RestoreState replaces the selector's cross-round algorithm state with a
// previously exported snapshot.
func (b *BAL) RestoreState(st BALState) {
	b.prevFired = append([]float64(nil), st.PrevFired...)
	b.hasPrev = st.HasPrev
	b.fellBack = append([]int(nil), st.FellBack...)
}

// CCMABState is CC-MAB's learned per-cube reward statistics in
// serialisable form.
type CCMABState struct {
	// Counts is the number of reward observations per hypercube.
	Counts map[string]int `json:"counts,omitempty"`
	// Sums is the summed observed reward per hypercube.
	Sums map[string]float64 `json:"sums,omitempty"`
}

// StateSnapshot exports the bandit's learned cube statistics.
func (c *CCMAB) StateSnapshot() CCMABState {
	st := CCMABState{
		Counts: make(map[string]int, len(c.counts)),
		Sums:   make(map[string]float64, len(c.sums)),
	}
	for k, v := range c.counts {
		st.Counts[k] = v
	}
	for k, v := range c.sums {
		st.Sums[k] = v
	}
	return st
}

// RestoreState replaces the bandit's learned cube statistics with a
// previously exported snapshot.
func (c *CCMAB) RestoreState(st CCMABState) {
	c.counts = make(map[string]int, len(st.Counts))
	c.sums = make(map[string]float64, len(st.Sums))
	for k, v := range st.Counts {
		c.counts[k] = v
	}
	for k, v := range st.Sums {
		c.sums[k] = v
	}
}

// RoundSelectorKinds are the strategy names NewRoundSelector accepts.
var RoundSelectorKinds = []string{"bal", "ccmab", "uncertainty", "uniform-ma", "random"}

// RoundSelectorState is the full persistent state of a RoundSelector.
// It is plain JSON: embed it in a checkpoint, write it back with
// RestoreState, and the selector continues exactly where it stopped.
type RoundSelectorState struct {
	Kind  string     `json:"kind"`
	Seed  int64      `json:"seed"`
	BAL   BALState   `json:"bal,omitempty"`
	CCMAB CCMABState `json:"ccmab,omitempty"`
}

// RoundSelector drives any of the paper's selection strategies through a
// crash-recoverable per-round protocol: each Select derives a fresh RNG
// from (seed, state.Round), reconstructs the underlying selector, restores
// its algorithm state, selects, and re-exports the state. It implements
// Selector, so it can drop into the activelearn harness anywhere a plain
// selector can — with the property that two RoundSelectors fed the same
// seed, rounds, and candidates pick identically even if one of them was
// serialised and revived between rounds.
type RoundSelector struct {
	kind string
	seed int64
	bal  BALState
	cc   CCMABState

	// CCHorizon and CCAlpha parameterise the CC-MAB reconstruction
	// (defaults 1000 and 1; irrelevant for other kinds).
	CCHorizon int
	CCAlpha   float64
}

// NewRoundSelector builds a round selector of the given kind (one of
// RoundSelectorKinds; "" means "bal").
func NewRoundSelector(kind string, seed int64) (*RoundSelector, error) {
	if kind == "" {
		kind = "bal"
	}
	ok := false
	for _, k := range RoundSelectorKinds {
		if kind == k {
			ok = true
			break
		}
	}
	if !ok {
		return nil, fmt.Errorf("bandit: unknown selector %q (want one of %v)", kind, RoundSelectorKinds)
	}
	return &RoundSelector{kind: kind, seed: seed, CCHorizon: 1000, CCAlpha: 1}, nil
}

// NewRoundSelectorFromState revives a round selector from a persisted
// state snapshot.
func NewRoundSelectorFromState(st RoundSelectorState) (*RoundSelector, error) {
	r, err := NewRoundSelector(st.Kind, st.Seed)
	if err != nil {
		return nil, err
	}
	r.RestoreState(st)
	return r, nil
}

// Name implements Selector.
func (r *RoundSelector) Name() string { return r.kind }

// Reset implements Selector: it clears all cross-round state and rebases
// the per-round RNG derivation on the new seed.
func (r *RoundSelector) Reset(seed int64) {
	r.seed = seed
	r.bal = BALState{}
	r.cc = CCMABState{}
}

// StateSnapshot exports everything needed to revive this selector.
func (r *RoundSelector) StateSnapshot() RoundSelectorState {
	st := RoundSelectorState{Kind: r.kind, Seed: r.seed}
	if r.kind == "bal" {
		b := &BAL{}
		b.RestoreState(r.bal)
		st.BAL = b.StateSnapshot()
	}
	if r.kind == "ccmab" {
		c := NewCCMAB(0, 1, 1, 1)
		c.RestoreState(r.cc)
		st.CCMAB = c.StateSnapshot()
	}
	return st
}

// RestoreState replaces the selector's cross-round state. The kind and
// seed in st are ignored (fixed at construction).
func (r *RoundSelector) RestoreState(st RoundSelectorState) {
	b := &BAL{}
	b.RestoreState(st.BAL)
	r.bal = b.StateSnapshot()
	c := NewCCMAB(0, 1, 1, 1)
	c.RestoreState(st.CCMAB)
	r.cc = c.StateSnapshot()
}

// roundSeed derives the RNG seed for one round: unique per (seed, kind,
// round) so re-running a round after a crash redraws identically.
func (r *RoundSelector) roundSeed(round int) int64 {
	return simrand.DeriveSeed(r.seed, fmt.Sprintf("%s-round-%d", r.kind, round))
}

// Select implements Selector via the reseed-and-restore protocol.
func (r *RoundSelector) Select(state RoundState) []int {
	seed := r.roundSeed(state.Round)
	switch r.kind {
	case "bal":
		b := NewBAL(seed, BALConfig{})
		b.RestoreState(r.bal)
		out := b.Select(state)
		r.bal = b.StateSnapshot()
		return out
	case "ccmab":
		d := len(state.FiredCounts)
		if d < 1 {
			d = 1
		}
		c := NewCCMAB(seed, d, r.CCHorizon, r.CCAlpha)
		c.RestoreState(r.cc)
		arms := make([]CCArm, len(state.Candidates))
		for i, cand := range state.Candidates {
			arms[i] = CCArm{ID: cand.Index, Context: ContextFromSeverities(cand.Severities, d)}
		}
		round := state.Round
		if round < 1 {
			round = 1
		}
		out := c.SelectArms(round, state.Budget, arms)
		r.cc = c.StateSnapshot()
		return out
	case "uncertainty":
		return NewUncertainty().Select(state)
	case "uniform-ma":
		return NewUniformMA(seed).Select(state)
	default: // "random"
		return NewRandom(seed).Select(state)
	}
}

// Reward feeds an observed labeling reward back into the learning
// strategies that use one (CC-MAB's cube statistics). context is the
// labeled point's severity-derived context (ContextFromSeverities);
// reward is conventionally 1 when labeling surfaced a real model error
// and 0 otherwise. A no-op for the stateless kinds and BAL (whose state
// advances through firing counts, not per-point rewards).
func (r *RoundSelector) Reward(context []float64, reward float64) {
	if r.kind != "ccmab" {
		return
	}
	d := len(context)
	if d < 1 {
		d = 1
	}
	c := NewCCMAB(0, d, r.CCHorizon, r.CCAlpha)
	c.RestoreState(r.cc)
	c.Update(CCArm{Context: context}, reward)
	r.cc = c.StateSnapshot()
}

// ContextFromSeverities squashes a severity vector into the [0,1]^d
// context CC-MAB partitions: coordinate m is s_m/(1+s_m), so severity 0
// maps to 0 and larger severities approach 1.
func ContextFromSeverities(sev []float64, d int) []float64 {
	out := make([]float64, d)
	for m := 0; m < d; m++ {
		if m < len(sev) && sev[m] > 0 {
			out[m] = sev[m] / (1 + sev[m])
		}
	}
	return out
}
