package bandit

import (
	"math"
	"testing"

	"omg/internal/simrand"
)

func TestCCMABPartitioning(t *testing.T) {
	c := NewCCMAB(1, 2, 1000, 1)
	// h_T = ceil(1000^(1/(3+2))) = ceil(1000^0.2) = ceil(3.98) = 4.
	if c.HT() != 4 {
		t.Fatalf("HT = %d, want 4", c.HT())
	}
	k1 := c.cubeKey([]float64{0.1, 0.1})
	k2 := c.cubeKey([]float64{0.12, 0.12})
	if k1 != k2 {
		t.Fatal("nearby contexts in different cubes")
	}
	k3 := c.cubeKey([]float64{0.9, 0.9})
	if k1 == k3 {
		t.Fatal("distant contexts share a cube")
	}
}

func TestCCMABCubeKeyBoundary(t *testing.T) {
	c := NewCCMAB(1, 1, 1000, 1)
	// Context exactly 1.0 must not overflow into a non-existent cell.
	if got := c.cubeKey([]float64{1.0}); got != c.cubeKey([]float64{0.999999}) {
		t.Fatalf("boundary context in its own cube: %q", got)
	}
	// Out-of-range contexts are clamped.
	if c.cubeKey([]float64{-5}) != c.cubeKey([]float64{0}) {
		t.Fatal("negative context not clamped")
	}
}

func TestCCMABSelectionValid(t *testing.T) {
	c := NewCCMAB(2, 1, 100, 1)
	arms := make([]CCArm, 20)
	for i := range arms {
		arms[i] = CCArm{ID: i, Context: []float64{float64(i) / 20}}
	}
	sel := c.SelectArms(1, 5, arms)
	assertValidSelection(t, sel, 20, 5)
}

func TestCCMABZeroBudget(t *testing.T) {
	c := NewCCMAB(2, 1, 100, 1)
	if sel := c.SelectArms(1, 0, []CCArm{{ID: 0, Context: []float64{0.5}}}); sel != nil {
		t.Fatalf("zero budget selection = %v", sel)
	}
}

func TestCCMABUpdateChangesQuality(t *testing.T) {
	c := NewCCMAB(3, 1, 100, 1)
	arm := CCArm{ID: 0, Context: []float64{0.5}}
	if q := c.quality(arm); q != 0.5 {
		t.Fatalf("prior quality = %v", q)
	}
	c.Update(arm, 1)
	c.Update(arm, 1)
	if q := c.quality(arm); q != 1 {
		t.Fatalf("updated quality = %v", q)
	}
	if c.CubesExplored() != 1 {
		t.Fatalf("CubesExplored = %d", c.CubesExplored())
	}
}

func TestCCMABGreedyPrefersHighQuality(t *testing.T) {
	c := NewCCMAB(4, 1, 10000, 1)
	good := CCArm{ID: 0, Context: []float64{0.9}}
	bad := CCArm{ID: 1, Context: []float64{0.1}}
	// Saturate exploration counts for both cubes.
	for i := 0; i < 200; i++ {
		c.Update(good, 1)
		c.Update(bad, 0)
	}
	arms := []CCArm{bad, good}
	sel := c.SelectArms(9000, 1, arms)
	if len(sel) != 1 || arms[sel[0]].ID != 0 {
		t.Fatalf("greedy picked %v", sel)
	}
}

func TestCCMABExploresUnderExploredCubes(t *testing.T) {
	c := NewCCMAB(5, 1, 10000, 1)
	known := CCArm{ID: 0, Context: []float64{0.9}}
	for i := 0; i < 500; i++ {
		c.Update(known, 1)
	}
	fresh := CCArm{ID: 1, Context: []float64{0.1}} // never seen
	sel := c.SelectArms(10, 1, []CCArm{known, fresh})
	if len(sel) != 1 || sel[0] != 1 {
		t.Fatalf("under-explored cube not prioritised: %v", sel)
	}
}

func TestCCMABMarginalDefaultSubmodular(t *testing.T) {
	c := NewCCMAB(6, 1, 100, 1)
	// Diminishing returns: gain of q into a larger set is smaller.
	gEmpty := c.Marginal(nil, 0.5)
	gOne := c.Marginal([]float64{0.5}, 0.5)
	gTwo := c.Marginal([]float64{0.5, 0.5}, 0.5)
	if !(gEmpty > gOne && gOne > gTwo) {
		t.Fatalf("marginal gains not diminishing: %v, %v, %v", gEmpty, gOne, gTwo)
	}
}

// TestCCMABLearnsOnSyntheticEnvironment runs the full loop on a smooth
// synthetic reward landscape and checks the average reward of selected
// arms improves from the first tenth to the last tenth of the horizon —
// the sublinear-regret property observable at small scale.
func TestCCMABLearnsOnSyntheticEnvironment(t *testing.T) {
	const horizon = 600
	const armsPerRound = 30
	const budget = 3
	rng := simrand.NewStream(99, "ccmab-env")
	c := NewCCMAB(7, 1, horizon, 1)

	trueQuality := func(x float64) float64 {
		// Smooth (Lipschitz) bump landscape in [0,1].
		return 0.15 + 0.7*math.Exp(-8*(x-0.7)*(x-0.7))
	}

	var earlySum, lateSum float64
	var earlyN, lateN int
	for round := 1; round <= horizon; round++ {
		arms := make([]CCArm, armsPerRound)
		for i := range arms {
			arms[i] = CCArm{ID: i, Context: []float64{rng.Float64()}}
		}
		sel := c.SelectArms(round, budget, arms)
		for _, p := range sel {
			q := trueQuality(arms[p].Context[0])
			reward := 0.0
			if rng.Bool(q) {
				reward = 1
			}
			c.Update(arms[p], reward)
			if round <= horizon/10 {
				earlySum += q
				earlyN++
			}
			if round > horizon-horizon/10 {
				lateSum += q
				lateN++
			}
		}
	}
	early := earlySum / float64(earlyN)
	late := lateSum / float64(lateN)
	if late <= early {
		t.Fatalf("CC-MAB did not learn: early mean quality %v, late %v", early, late)
	}
}
