package bandit

import (
	"testing"

	"omg/internal/assertion"
)

func TestBALRound1SamplesFromAssertions(t *testing.T) {
	cands := mkPool(100, 3)
	b := NewBAL(1, BALConfig{})
	sel := b.Select(mkState(1, 20, cands, 3))
	assertValidSelection(t, sel, 100, 20)
	for _, p := range sel {
		if !cands[p].Severities.Fired() {
			t.Fatalf("round-1 BAL picked non-triggering candidate %d", p)
		}
	}
}

func TestBALPrefersReducingAssertion(t *testing.T) {
	d := 2
	// Round 1: both assertions fire on disjoint halves.
	mk := func(fired0, fired1 int) []Candidate {
		var out []Candidate
		i := 0
		for ; i < fired0; i++ {
			out = append(out, Candidate{Index: i, Severities: assertion.Vector{1, 0}})
		}
		for ; i < fired0+fired1; i++ {
			out = append(out, Candidate{Index: i, Severities: assertion.Vector{0, 1}})
		}
		// Plus quiet filler.
		for ; i < fired0+fired1+50; i++ {
			out = append(out, Candidate{Index: i, Severities: assertion.Vector{0, 0}})
		}
		return out
	}

	b := NewBAL(2, BALConfig{})
	round1 := mk(200, 200)
	b.Select(mkState(1, 20, round1, d))

	// Round 2: assertion 0 reduced by 50%, assertion 1 unchanged.
	round2 := mk(100, 200)
	sel := b.Select(mkState(2, 100, round2, d))
	from0, from1 := 0, 0
	for _, p := range sel {
		switch {
		case round2[p].Severities[0] > 0:
			from0++
		case round2[p].Severities[1] > 0:
			from1++
		}
	}
	// Exploitation (75%) goes entirely to assertion 0 (r_1 = 0);
	// exploration (25%) splits evenly. Expect a strong skew.
	if from0 <= from1*2 {
		t.Fatalf("BAL did not prefer the reducing assertion: %d vs %d", from0, from1)
	}
}

func TestBALFallsBackWhenNoReduction(t *testing.T) {
	d := 2
	cands := mkPool(200, d)
	b := NewBAL(3, BALConfig{})
	b.Select(mkState(1, 10, cands, d))
	// Same pool again: zero reduction everywhere -> fallback.
	sel := b.Select(mkState(2, 10, cands, d))
	assertValidSelection(t, sel, 200, 10)
	rounds := b.FellBackRounds()
	if len(rounds) != 1 || rounds[0] != 2 {
		t.Fatalf("FellBackRounds = %v", rounds)
	}
}

func TestBALUncertaintyFallback(t *testing.T) {
	d := 1
	cands := make([]Candidate, 50)
	for i := range cands {
		cands[i] = Candidate{Index: i, Severities: assertion.Vector{0}, Uncertainty: float64(i)}
	}
	b := NewBAL(4, BALConfig{Fallback: NewUncertainty()})
	b.Select(mkState(1, 5, cands, d))
	sel := b.Select(mkState(2, 5, cands, d))
	// Uncertainty fallback: top-5 by uncertainty = indices 45..49.
	for _, p := range sel {
		if p < 45 {
			t.Fatalf("uncertainty fallback not used: picked %d", p)
		}
	}
}

func TestBALResetClearsHistory(t *testing.T) {
	cands := mkPool(100, 2)
	b := NewBAL(5, BALConfig{})
	b.Select(mkState(1, 10, cands, 2))
	b.Select(mkState(2, 10, cands, 2))
	if len(b.FellBackRounds()) == 0 {
		t.Fatal("expected fallback in round 2 (no reduction)")
	}
	b.Reset(5)
	if len(b.FellBackRounds()) != 0 {
		t.Fatal("Reset did not clear fallback history")
	}
	// After reset, round behaves like round 1 (samples from assertions).
	sel := b.Select(mkState(1, 10, cands, 2))
	for _, p := range sel {
		if !cands[p].Severities.Fired() {
			t.Fatal("post-reset round 1 picked non-triggering candidate")
		}
	}
}

func TestBALDeterministicPerSeed(t *testing.T) {
	cands := mkPool(100, 3)
	run := func() [][]int {
		b := NewBAL(9, BALConfig{})
		var out [][]int
		out = append(out, b.Select(mkState(1, 10, cands, 3)))
		out = append(out, b.Select(mkState(2, 10, cands, 3)))
		return out
	}
	a, c := run(), run()
	for r := range a {
		for i := range a[r] {
			if a[r][i] != c[r][i] {
				t.Fatal("BAL not deterministic per seed")
			}
		}
	}
}

func TestBALSeverityRankBias(t *testing.T) {
	// One assertion; severities increase with index. Rank sampling should
	// bias toward high-severity candidates.
	const n = 200
	cands := make([]Candidate, n)
	for i := range cands {
		cands[i] = Candidate{Index: i, Severities: assertion.Vector{float64(i + 1)}}
	}
	b := NewBAL(11, BALConfig{})
	sel := b.Select(mkState(1, 50, cands, 1))
	sum := 0
	for _, p := range sel {
		sum += p
	}
	meanPos := float64(sum) / float64(len(sel))
	// Uniform sampling would give ~100; rank-weighted should exceed it.
	if meanPos < 105 {
		t.Fatalf("rank weighting not biasing to high severity: mean pos = %v", meanPos)
	}
}

func TestBALNoExploreAblation(t *testing.T) {
	d := 2
	mk := func(fired0, fired1 int) []Candidate {
		var out []Candidate
		i := 0
		for ; i < fired0; i++ {
			out = append(out, Candidate{Index: i, Severities: assertion.Vector{1, 0}})
		}
		for ; i < fired0+fired1; i++ {
			out = append(out, Candidate{Index: i, Severities: assertion.Vector{0, 1}})
		}
		return out
	}
	b := NewBAL(13, BALConfig{NoExplore: true})
	b.Select(mkState(1, 10, mk(100, 100), d))
	sel := b.Select(mkState(2, 40, mk(50, 100), d)) // only assertion 0 reduced
	from1 := 0
	for _, p := range sel {
		if mk(50, 100)[p].Severities[1] > 0 {
			from1++
		}
	}
	// With no exploration, all 40 go to assertion 0.
	if from1 != 0 {
		t.Fatalf("NoExplore still sampled %d from non-reducing assertion", from1)
	}
}

func TestBALBudgetLargerThanTriggering(t *testing.T) {
	// Budget exceeds the number of triggering candidates: fill randomly.
	cands := make([]Candidate, 30)
	for i := range cands {
		sev := assertion.Vector{0}
		if i < 5 {
			sev[0] = 1
		}
		cands[i] = Candidate{Index: i, Severities: sev}
	}
	b := NewBAL(17, BALConfig{})
	sel := b.Select(mkState(1, 20, cands, 1))
	assertValidSelection(t, sel, 30, 20)
}

func TestBALEmptyPool(t *testing.T) {
	b := NewBAL(19, BALConfig{})
	if sel := b.Select(mkState(1, 10, nil, 2)); len(sel) != 0 {
		t.Fatalf("empty pool selection = %v", sel)
	}
}
