package bandit

import (
	"encoding/json"
	"reflect"
	"testing"
)

// evolvePool shrinks firing counts round over round so BAL sees a
// marginal reduction signal: round r keeps candidates whose assertion
// severity survives a per-round decay.
func evolvePool(round, n, d int) []Candidate {
	cands := mkPool(n, d)
	for i := range cands {
		for m := range cands[i].Severities {
			if (i+round*3)%7 == 0 {
				cands[i].Severities[m] = 0
			}
		}
	}
	return cands
}

func TestBALStateSnapshotRestore(t *testing.T) {
	a := NewBAL(7, BALConfig{})
	a.Select(mkState(1, 8, mkPool(60, 4), 4))
	st := a.StateSnapshot()
	if !st.HasPrev || len(st.PrevFired) != 4 {
		t.Fatalf("snapshot after round 1: %+v", st)
	}
	b := NewBAL(99, BALConfig{})
	b.RestoreState(st)
	got := b.StateSnapshot()
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("restore round-trip: got %+v want %+v", got, st)
	}
	// Mutating the snapshot must not reach into the selector.
	st.PrevFired[0] = -1
	if b.StateSnapshot().PrevFired[0] == -1 {
		t.Fatal("RestoreState aliased the snapshot slice")
	}
}

func TestCCMABStateSnapshotRestore(t *testing.T) {
	c := NewCCMAB(3, 2, 100, 1)
	c.Update(CCArm{Context: []float64{0.2, 0.9}}, 1)
	c.Update(CCArm{Context: []float64{0.8, 0.1}}, 0)
	st := c.StateSnapshot()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back CCMABState
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	c2 := NewCCMAB(3, 2, 100, 1)
	c2.RestoreState(back)
	if c2.CubesExplored() != c.CubesExplored() {
		t.Fatalf("cubes: got %d want %d", c2.CubesExplored(), c.CubesExplored())
	}
	if q1, q2 := c.quality(CCArm{Context: []float64{0.2, 0.9}}), c2.quality(CCArm{Context: []float64{0.2, 0.9}}); q1 != q2 {
		t.Fatalf("quality diverged after restore: %v vs %v", q1, q2)
	}
}

// TestRoundSelectorCrashEquivalence is the property the collector's label
// service depends on: serialising a RoundSelector mid-run and reviving it
// from JSON yields exactly the selections the uninterrupted selector
// would have made.
func TestRoundSelectorCrashEquivalence(t *testing.T) {
	const rounds, n, d, budget = 5, 80, 4, 10
	for _, kind := range RoundSelectorKinds {
		t.Run(kind, func(t *testing.T) {
			cont, err := NewRoundSelector(kind, 42)
			if err != nil {
				t.Fatal(err)
			}
			crashed, err := NewRoundSelector(kind, 42)
			if err != nil {
				t.Fatal(err)
			}
			for r := 1; r <= rounds; r++ {
				state := mkState(r, budget, evolvePool(r, n, d), d)
				want := cont.Select(state)
				got := crashed.Select(state)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("round %d: continuous %v vs revived %v", r, want, got)
				}
				assertValidSelection(t, want, n, budget)
				// Simulate kill -9 + restart between every round: the only
				// thing that survives is the JSON state snapshot.
				raw, err := json.Marshal(crashed.StateSnapshot())
				if err != nil {
					t.Fatal(err)
				}
				var st RoundSelectorState
				if err := json.Unmarshal(raw, &st); err != nil {
					t.Fatal(err)
				}
				crashed, err = NewRoundSelectorFromState(st)
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestRoundSelectorMatchesBALReference(t *testing.T) {
	// The RoundSelector's "bal" kind must reproduce a reference BAL that
	// follows the same reseed-per-round protocol — this is the trace the
	// collector e2e test replays over HTTP.
	rs, err := NewRoundSelector("bal", 11)
	if err != nil {
		t.Fatal(err)
	}
	var ref BALState
	for r := 1; r <= 4; r++ {
		state := mkState(r, 12, evolvePool(r, 64, 3), 3)
		got := rs.Select(state)
		b := NewBAL(rs.roundSeed(r), BALConfig{})
		b.RestoreState(ref)
		want := b.Select(state)
		ref = b.StateSnapshot()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: RoundSelector %v vs reference BAL %v", r, got, want)
		}
	}
}

func TestRoundSelectorUnknownKind(t *testing.T) {
	if _, err := NewRoundSelector("thompson", 1); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	rs, err := NewRoundSelector("", 1)
	if err != nil || rs.Name() != "bal" {
		t.Fatalf("empty kind should default to bal, got %v err %v", rs, err)
	}
}

func TestRoundSelectorRewardFeedsCCMAB(t *testing.T) {
	rs, err := NewRoundSelector("ccmab", 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx := ContextFromSeverities([]float64{3, 0}, 2)
	rs.Reward(ctx, 1)
	st := rs.StateSnapshot()
	if len(st.CCMAB.Counts) != 1 {
		t.Fatalf("reward did not land in cube stats: %+v", st.CCMAB)
	}
	// Reward is a no-op for bal.
	bal, _ := NewRoundSelector("bal", 5)
	bal.Reward(ctx, 1)
	if got := bal.StateSnapshot(); len(got.CCMAB.Counts) != 0 {
		t.Fatalf("bal Reward should be a no-op, got %+v", got.CCMAB)
	}
}

func TestContextFromSeverities(t *testing.T) {
	got := ContextFromSeverities([]float64{0, 1, 3, -2}, 5)
	want := []float64{0, 0.5, 0.75, 0, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}
