// Package simrand provides deterministic, stream-splittable random number
// utilities used by every simulator in this repository.
//
// All experiments in the paper reproduction must be exactly reproducible
// from a single integer seed. Plain math/rand sources are reproducible but
// fragile: inserting one extra draw anywhere perturbs every later draw. To
// make experiments robust to refactoring, simrand derives independent
// sub-streams from (seed, label) pairs with a SplitMix64-style hash, so each
// component (scene generator, detector noise, labeler noise, bandit
// exploration, ...) owns its own stream.
package simrand

import (
	"math"
	"math/rand"
)

// splitmix64 advances and scrambles a 64-bit state. It is the standard
// SplitMix64 generator, used here only for seed derivation.
func splitmix64(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashString folds a label into a 64-bit value (FNV-1a).
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// DeriveSeed deterministically derives a child seed from a parent seed and a
// stream label. Distinct labels yield (with overwhelming probability)
// distinct, statistically independent child seeds.
func DeriveSeed(seed int64, label string) int64 {
	return int64(splitmix64(uint64(seed) ^ splitmix64(hashString(label))))
}

// RNG wraps *rand.Rand with the sampling helpers the simulators need.
// It is NOT safe for concurrent use; derive one RNG per goroutine.
type RNG struct {
	*rand.Rand
}

// New returns an RNG seeded with the given seed.
func New(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed))}
}

// NewStream returns an RNG for the sub-stream identified by label.
func NewStream(seed int64, label string) *RNG {
	return New(DeriveSeed(seed, label))
}

// Stream derives a child RNG from this RNG's seed space and a label. The
// child is independent of the parent's current position.
func (r *RNG) Stream(label string) *RNG {
	return New(int64(splitmix64(uint64(r.Int63()) ^ hashString(label))))
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Uniform returns a uniform sample in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Gaussian returns a normal sample with the given mean and standard
// deviation.
func (r *RNG) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// ClampedGaussian returns a normal sample clamped into [lo, hi].
func (r *RNG) ClampedGaussian(mean, stddev, lo, hi float64) float64 {
	v := r.Gaussian(mean, stddev)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Beta returns a Beta(a, b) sample via the Jöhnk/gamma method. It is used
// for confidence-score models where bounded, skewed distributions are
// needed. Both parameters must be positive.
func (r *RNG) Beta(a, b float64) float64 {
	x := r.gamma(a)
	y := r.gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// gamma samples Gamma(shape, 1) using Marsaglia–Tsang for shape >= 1 and the
// boost transform for shape < 1.
func (r *RNG) gamma(shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Exponential returns an exponential sample with the given mean.
func (r *RNG) Exponential(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// IntBetween returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("simrand: IntBetween with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Choice returns a uniformly random index in [0, n). It panics if n <= 0.
func (r *RNG) Choice(n int) int {
	if n <= 0 {
		panic("simrand: Choice with n <= 0")
	}
	return r.Intn(n)
}

// WeightedChoice returns an index sampled proportionally to the given
// non-negative weights. If all weights are zero it falls back to uniform.
// It panics on an empty slice.
func (r *RNG) WeightedChoice(weights []float64) int {
	if len(weights) == 0 {
		panic("simrand: WeightedChoice with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	target := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the n elements addressed by swap in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	r.Rand.Shuffle(n, swap)
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). If k >= n it returns all n indices (shuffled). k must be >= 0.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k < 0 {
		panic("simrand: negative sample size")
	}
	perm := r.Perm(n)
	if k > n {
		k = n
	}
	return perm[:k]
}
