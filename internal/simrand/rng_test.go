package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(42, "detector")
	b := DeriveSeed(42, "detector")
	if a != b {
		t.Fatalf("DeriveSeed not deterministic: %d vs %d", a, b)
	}
}

func TestDeriveSeedDistinctLabels(t *testing.T) {
	labels := []string{"a", "b", "detector", "scene", "labeler", "bandit", ""}
	seen := make(map[int64]string)
	for _, l := range labels {
		s := DeriveSeed(7, l)
		if prev, ok := seen[s]; ok {
			t.Fatalf("labels %q and %q collide on seed %d", prev, l, s)
		}
		seen[s] = l
	}
}

func TestDeriveSeedDistinctSeeds(t *testing.T) {
	if DeriveSeed(1, "x") == DeriveSeed(2, "x") {
		t.Fatal("different parent seeds produced the same child seed")
	}
}

func TestStreamsIndependentOfDrawOrder(t *testing.T) {
	// The defining property: deriving stream B is unaffected by how many
	// draws were made from stream A.
	a1 := NewStream(99, "a")
	b1 := NewStream(99, "b")
	_ = a1.Float64()
	_ = a1.Float64()
	first := b1.Float64()

	b2 := NewStream(99, "b")
	if got := b2.Float64(); got != first {
		t.Fatalf("stream b not independent: %v vs %v", got, first)
	}
}

func TestBoolEdgeCases(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(negative) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(>1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(2)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) frequency = %v, want ~0.3", freq)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform(-2,5) out of range: %v", v)
		}
	}
}

func TestClampedGaussianBounds(t *testing.T) {
	r := New(4)
	for i := 0; i < 1000; i++ {
		v := r.ClampedGaussian(0, 10, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("ClampedGaussian out of bounds: %v", v)
		}
	}
}

func TestBetaBoundsAndMean(t *testing.T) {
	r := New(5)
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Beta(8, 2)
		if v < 0 || v > 1 {
			t.Fatalf("Beta sample out of [0,1]: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.8) > 0.02 {
		t.Fatalf("Beta(8,2) mean = %v, want ~0.8", mean)
	}
}

func TestBetaSmallShapes(t *testing.T) {
	r := New(6)
	for i := 0; i < 1000; i++ {
		v := r.Beta(0.5, 0.5)
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("Beta(0.5,0.5) invalid sample: %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(7)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(3)
	}
	mean := sum / n
	if math.Abs(mean-3) > 0.1 {
		t.Fatalf("Exponential(3) mean = %v", mean)
	}
}

func TestIntBetweenInclusive(t *testing.T) {
	r := New(8)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.IntBetween(2, 4)
		if v < 2 || v > 4 {
			t.Fatalf("IntBetween(2,4) out of range: %d", v)
		}
		seen[v] = true
	}
	for v := 2; v <= 4; v++ {
		if !seen[v] {
			t.Fatalf("IntBetween never produced %d", v)
		}
	}
}

func TestIntBetweenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntBetween(5,2) did not panic")
		}
	}()
	New(9).IntBetween(5, 2)
}

func TestWeightedChoiceDistribution(t *testing.T) {
	r := New(10)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index selected %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoiceAllZero(t *testing.T) {
	r := New(11)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[r.WeightedChoice([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("uniform fallback never selected index %d", i)
		}
	}
}

func TestWeightedChoiceNegativeTreatedAsZero(t *testing.T) {
	r := New(12)
	for i := 0; i < 1000; i++ {
		if r.WeightedChoice([]float64{-5, 1}) == 0 {
			t.Fatal("negative-weight index selected")
		}
	}
}

func TestWeightedChoicePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WeightedChoice(nil) did not panic")
		}
	}()
	New(13).WeightedChoice(nil)
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(14)
	got := r.SampleWithoutReplacement(10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	seen := make(map[int]bool)
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("index out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacementOversized(t *testing.T) {
	r := New(15)
	got := r.SampleWithoutReplacement(3, 10)
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
}

func TestQuickDeriveSeedStable(t *testing.T) {
	f := func(seed int64, label string) bool {
		return DeriveSeed(seed, label) == DeriveSeed(seed, label)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBetaInUnitInterval(t *testing.T) {
	r := New(16)
	f := func(a8, b8 uint8) bool {
		a := 0.1 + float64(a8%50)/10
		b := 0.1 + float64(b8%50)/10
		v := r.Beta(a, b)
		return v >= 0 && v <= 1 && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
