package simrand

import "math"

// HashUniform returns a deterministic pseudo-uniform value in [0, 1)
// derived from the seed and the given integer parts. It is the mechanism
// behind the simulated models' *monotone* training behaviour: an error
// event is realised iff HashUniform(seed, event...) < rate, so lowering
// the rate can only remove errors, never introduce new ones. This mirrors
// how fixing a systematic failure mode in a real model removes a coherent
// set of errors rather than reshuffling them.
func HashUniform(seed int64, parts ...int64) float64 {
	h := splitmix64(uint64(seed))
	for _, p := range parts {
		h = splitmix64(h ^ splitmix64(uint64(p)))
	}
	// Use the top 53 bits for a float64 in [0, 1).
	return float64(h>>11) / float64(1<<53)
}

// HashRNG returns an RNG whose seed is derived from the given parts,
// for deterministic per-event sampling of richer distributions (e.g.
// confidence scores).
func HashRNG(seed int64, parts ...int64) *RNG {
	h := splitmix64(uint64(seed))
	for _, p := range parts {
		h = splitmix64(h ^ splitmix64(uint64(p)))
	}
	return New(int64(h))
}

// HashGaussian returns a deterministic standard-normal value derived from
// the seed and parts, via the inverse-CDF of a HashUniform draw.
func HashGaussian(seed int64, parts ...int64) float64 {
	u := HashUniform(seed, parts...)
	// Clamp away from 0/1 to keep the inverse CDF finite.
	if u < 1e-12 {
		u = 1e-12
	}
	if u > 1-1e-12 {
		u = 1 - 1e-12
	}
	return invNormCDF(u)
}

// invNormCDF is the Acklam rational approximation to the inverse normal
// CDF; absolute error < 1.15e-9, ample for simulation noise.
func invNormCDF(p float64) float64 {
	a := [6]float64{-39.69683028665376, 220.9460984245205, -275.9285104469687,
		138.3577518672690, -30.66479806614716, 2.506628277459239}
	b := [5]float64{-54.47609879822406, 161.5858368580409, -155.6989798598866,
		66.80131188771972, -13.28068155288572}
	c := [6]float64{-0.007784894002430293, -0.3223964580411365, -2.400758277161838,
		-2.549732539343734, 4.374664141464968, 2.938163982698783}
	d := [4]float64{0.007784695709041462, 0.3224671290700398, 2.445134137142996,
		3.754408661907416}

	const plow = 0.02425
	const phigh = 1 - plow

	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
