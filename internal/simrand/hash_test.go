package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHashUniformDeterministic(t *testing.T) {
	a := HashUniform(42, 1, 2, 3)
	b := HashUniform(42, 1, 2, 3)
	if a != b {
		t.Fatalf("not deterministic: %v vs %v", a, b)
	}
}

func TestHashUniformDistinct(t *testing.T) {
	if HashUniform(42, 1, 2) == HashUniform(42, 2, 1) {
		t.Fatal("part order ignored")
	}
	if HashUniform(42, 1) == HashUniform(43, 1) {
		t.Fatal("seed ignored")
	}
}

func TestHashUniformRange(t *testing.T) {
	for i := int64(0); i < 10000; i++ {
		u := HashUniform(7, i)
		if u < 0 || u >= 1 {
			t.Fatalf("HashUniform out of range: %v", u)
		}
	}
}

func TestHashUniformApproximatelyUniform(t *testing.T) {
	const n = 50000
	buckets := make([]int, 10)
	for i := int64(0); i < n; i++ {
		buckets[int(HashUniform(13, i)*10)]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bucket %d frequency %v, want ~0.1", i, frac)
		}
	}
}

func TestHashRNGDeterministic(t *testing.T) {
	a := HashRNG(5, 8, 9).Float64()
	b := HashRNG(5, 8, 9).Float64()
	if a != b {
		t.Fatalf("HashRNG not deterministic: %v vs %v", a, b)
	}
}

func TestHashGaussianMoments(t *testing.T) {
	const n = 50000
	sum, sumsq := 0.0, 0.0
	for i := int64(0); i < n; i++ {
		v := HashGaussian(3, i)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("gaussian mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("gaussian variance = %v", variance)
	}
}

func TestInvNormCDFKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.8413, 0.99982}, // ~1 sigma
	}
	for _, c := range cases {
		if got := invNormCDF(c.p); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("invNormCDF(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestQuickInvNormCDFMonotone(t *testing.T) {
	f := func(a8, b8 uint16) bool {
		pa := 0.001 + 0.998*float64(a8)/65535
		pb := 0.001 + 0.998*float64(b8)/65535
		if pa > pb {
			pa, pb = pb, pa
		}
		return invNormCDF(pa) <= invNormCDF(pb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The monotone-error property: if an event is not realised at rate r, it is
// also not realised at any lower rate.
func TestQuickHashUniformMonotoneRealization(t *testing.T) {
	f := func(ev int64, r1, r2 float64) bool {
		lo, hi := math.Abs(math.Mod(r1, 1)), math.Abs(math.Mod(r2, 1))
		if math.IsNaN(lo) || math.IsNaN(hi) {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		u := HashUniform(11, ev)
		realizedLo := u < lo
		realizedHi := u < hi
		// realized at lower rate implies realized at higher rate
		return !realizedLo || realizedHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
