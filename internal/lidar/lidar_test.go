package lidar

import (
	"testing"

	"omg/internal/geometry"
)

func world(t *testing.T, scenes int) []Scene {
	t.Helper()
	return Generate(Config{Seed: 1, NumScenes: scenes})
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 4, NumScenes: 5})
	b := Generate(Config{Seed: 4, NumScenes: 5})
	for si := range a {
		if len(a[si].Frames) != len(b[si].Frames) {
			t.Fatal("frame counts differ")
		}
		for fi := range a[si].Frames {
			if len(a[si].Frames[fi].Objects) != len(b[si].Frames[fi].Objects) {
				t.Fatalf("scene %d frame %d differs", si, fi)
			}
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	scenes := world(t, 10)
	if len(scenes) != 10 {
		t.Fatalf("scenes = %d", len(scenes))
	}
	global := 0
	for si, s := range scenes {
		if s.Index != si {
			t.Fatalf("scene index %d != %d", s.Index, si)
		}
		if len(s.Frames) != 40 {
			t.Fatalf("frames per scene = %d", len(s.Frames))
		}
		for fi, f := range s.Frames {
			if f.Scene != si || f.Index != fi || f.Global != global {
				t.Fatalf("frame metadata wrong: %+v", f)
			}
			if f.Time != float64(global)*0.5 {
				t.Fatalf("2Hz time wrong: %v", f.Time)
			}
			global++
			for _, o := range f.Objects {
				if o.Box.Volume() <= 0 {
					t.Fatalf("degenerate 3D box: %v", o.Box)
				}
				if o.Distance <= 0 {
					t.Fatalf("distance = %v", o.Distance)
				}
				if o.TrackID < 1 {
					t.Fatal("bad track id")
				}
			}
		}
	}
}

func TestGenerateHasObjects(t *testing.T) {
	scenes := world(t, 20)
	total := 0
	for _, s := range scenes {
		for _, f := range s.Frames {
			total += len(f.Objects)
		}
	}
	if total < 20*40 { // at least ~1 object per frame on average
		t.Fatalf("world too empty: %d object-frames", total)
	}
}

func TestProjectFrame(t *testing.T) {
	cam := geometry.DefaultCamera()
	scenes := world(t, 10)
	projected, visible := 0, 0
	for _, s := range scenes {
		for _, f := range s.Frames {
			vf, vis := ProjectFrame(cam, f)
			if vf.Index != f.Global || vf.Time != f.Time {
				t.Fatalf("projected frame metadata: %+v", vf)
			}
			if len(vf.Objects) != len(vis) {
				t.Fatal("visible list mismatched")
			}
			projected += len(vf.Objects)
			visible += len(f.Objects)
			for _, o := range vf.Objects {
				if !cam.ImageBounds().ContainsBox(o.Box) {
					t.Fatalf("projected box outside image: %v", o.Box)
				}
			}
		}
	}
	if projected == 0 {
		t.Fatal("nothing projected into the camera")
	}
	if projected >= visible {
		t.Fatal("camera frustum culled nothing; expected partial visibility")
	}
}

func TestProjectFrameFarIsSmall(t *testing.T) {
	cam := geometry.DefaultCamera()
	f := Frame{Global: 0, Objects: []Object3D{
		{TrackID: 1, Class: "car", Distance: 60,
			Box: geometry.Box3D{Center: geometry.Vec3{X: 0, Y: 60, Z: 0.8}, Length: 4.5, Width: 1.9, Height: 1.6}},
		{TrackID: 2, Class: "car", Distance: 8,
			Box: geometry.Box3D{Center: geometry.Vec3{X: 3, Y: 8, Z: 0.8}, Length: 4.5, Width: 1.9, Height: 1.6}},
	}}
	vf, _ := ProjectFrame(cam, f)
	if len(vf.Objects) != 2 {
		t.Fatalf("projected %d objects", len(vf.Objects))
	}
	for _, o := range vf.Objects {
		if o.TrackID == 1 && !o.Small {
			t.Fatal("far object not marked small")
		}
		if o.TrackID == 2 && o.Small {
			t.Fatal("near object marked small")
		}
	}
}

func TestDetectorDeterministic(t *testing.T) {
	scenes := world(t, 3)
	d1 := NewDetector(7, DefaultDetectorParams())
	d2 := NewDetector(7, DefaultDetectorParams())
	for _, s := range scenes {
		for _, f := range s.Frames {
			a, b := d1.Detect(f), d2.Detect(f)
			if len(a) != len(b) {
				t.Fatal("nondeterministic detection count")
			}
		}
	}
}

func TestDetectorMissesMoreAtRange(t *testing.T) {
	d := NewDetector(7, DefaultDetectorParams())
	if d.missRate(5) >= d.missRate(70) {
		t.Fatal("miss rate not increasing with range")
	}
	if d.missRate(1000) != DefaultDetectorParams().MissFar {
		t.Fatal("miss rate not clamped at far range")
	}
}

func TestDetectorRecallAndErrors(t *testing.T) {
	scenes := world(t, 20)
	d := NewDetector(7, DefaultDetectorParams())
	gt, detected, oversized, fps := 0, 0, 0, 0
	for _, s := range scenes {
		for _, f := range s.Frames {
			gt += len(f.Objects)
			byTrack := make(map[int]bool)
			for _, o := range f.Objects {
				byTrack[o.TrackID] = true
			}
			gtVol := make(map[int]float64)
			for _, o := range f.Objects {
				gtVol[o.TrackID] = o.Box.Volume()
			}
			for _, det := range d.Detect(f) {
				if det.GTTrack == 0 {
					fps++
					continue
				}
				detected++
				if det.Box.Volume() > gtVol[det.GTTrack]*1.8 {
					oversized++
				}
				if det.Score < 0.3 || det.Score > 1 {
					t.Fatalf("score out of range: %v", det.Score)
				}
			}
		}
	}
	recall := float64(detected) / float64(gt)
	if recall < 0.5 || recall > 0.95 {
		t.Fatalf("recall = %v, outside plausible band", recall)
	}
	if oversized == 0 {
		t.Fatal("no oversize errors generated")
	}
	if fps == 0 {
		t.Fatal("no false positives generated")
	}
}
