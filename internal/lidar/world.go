// Package lidar generates the synthetic autonomous-vehicle world used by
// the paper's NuScenes reproduction: ego-centric 3D scenes containing
// vehicles with ground-truth 3D boxes, observed simultaneously by a LIDAR
// detector (this package) and a camera detector (the 2D simulated
// detector applied to projected ground truth). Scenes are sampled at 2 Hz
// to match NuScenes' annotation rate — the reason the paper deploys no
// flicker assertion in this domain.
package lidar

import (
	"math"

	"omg/internal/geometry"
	"omg/internal/simrand"
	"omg/internal/video"
)

// Object3D is one ground-truth vehicle in a scene.
type Object3D struct {
	// TrackID is stable across the frames of one scene.
	TrackID int
	// Class is the true class ("car", "truck", "bus").
	Class string
	// Box is the ground-truth 3D box in ego coordinates (x right,
	// y forward, z up).
	Box geometry.Box3D
	// Distance is the range from the ego sensor (metres), the context
	// that drives LIDAR sparsity.
	Distance float64
}

// Frame is one annotated sample of a scene (2 Hz).
type Frame struct {
	// Scene and Index position the frame: Index counts frames within the
	// scene; Global is the dataset-wide frame counter.
	Scene, Index, Global int
	Time                 float64
	Objects              []Object3D
}

// Scene is one NuScenes-style scene: a short clip of annotated frames.
type Scene struct {
	Index  int
	Frames []Frame
}

// Config parameterises the world generator.
type Config struct {
	Seed int64
	// NumScenes to generate. Each scene has FramesPerScene frames at 2 Hz.
	NumScenes int
	// FramesPerScene defaults to 40 (20 seconds at 2 Hz, NuScenes scene
	// length).
	FramesPerScene int
	// MeanObjects is the mean number of vehicles per scene. Default 7.
	MeanObjects int
}

func (c Config) withDefaults() Config {
	if c.FramesPerScene <= 0 {
		c.FramesPerScene = 40
	}
	if c.MeanObjects <= 0 {
		c.MeanObjects = 7
	}
	return c
}

// Generate produces the synthetic scenes, deterministic in the seed.
func Generate(cfg Config) []Scene {
	cfg = cfg.withDefaults()
	rng := simrand.NewStream(cfg.Seed, "lidar-world")
	scenes := make([]Scene, cfg.NumScenes)
	global := 0
	nextTrack := 1

	for si := 0; si < cfg.NumScenes; si++ {
		n := rng.IntBetween(cfg.MeanObjects-1, cfg.MeanObjects+1)
		if n < 1 {
			n = 1
		}
		type actor struct {
			obj    Object3D
			vx, vy float64
		}
		actors := make([]actor, 0, n)
		for i := 0; i < n; i++ {
			classIdx := rng.WeightedChoice([]float64{0.72, 0.2, 0.08})
			class := video.Classes[classIdx]
			length, width, height := 4.5, 1.9, 1.6
			switch class {
			case "truck":
				length, width, height = 8.0, 2.5, 3.0
			case "bus":
				length, width, height = 11.0, 2.6, 3.2
			}
			length *= rng.Uniform(0.9, 1.1)
			width *= rng.Uniform(0.92, 1.08)
			a := actor{
				obj: Object3D{
					TrackID: nextTrack,
					Class:   class,
					Box: geometry.Box3D{
						Center: geometry.Vec3{
							X: rng.Uniform(-18, 18),
							Y: rng.Uniform(6, 60),
							Z: height / 2,
						},
						Length: length, Width: width, Height: height,
						Yaw: rng.Uniform(0, 2*math.Pi),
					},
				},
				vx: rng.Uniform(-1.5, 1.5), // metres per frame (0.5 s)
				vy: rng.Uniform(-2.5, 2.5),
			}
			nextTrack++
			actors = append(actors, a)
		}

		frames := make([]Frame, cfg.FramesPerScene)
		for fi := 0; fi < cfg.FramesPerScene; fi++ {
			objs := make([]Object3D, 0, len(actors))
			for ai := range actors {
				a := &actors[ai]
				if fi > 0 {
					a.obj.Box.Center.X += a.vx
					a.obj.Box.Center.Y += a.vy
				}
				// Keep actors inside the annotated range.
				if a.obj.Box.Center.Y < 4 || a.obj.Box.Center.Y > 75 ||
					a.obj.Box.Center.X < -25 || a.obj.Box.Center.X > 25 {
					continue
				}
				o := a.obj
				o.Distance = math.Sqrt(o.Box.Center.X*o.Box.Center.X + o.Box.Center.Y*o.Box.Center.Y)
				objs = append(objs, o)
			}
			frames[fi] = Frame{
				Scene:   si,
				Index:   fi,
				Global:  global,
				Time:    float64(global) * 0.5, // 2 Hz
				Objects: objs,
			}
			global++
		}
		scenes[si] = Scene{Index: si, Frames: frames}
	}
	return scenes
}

// ProjectFrame converts a 3D ground-truth frame into a 2D video.Frame as
// seen by the given camera: the substrate on which the simulated camera
// detector (internal/detection) runs. Objects behind the camera or
// outside the frustum are dropped; far objects project to small boxes
// (the Small context), and overlap-based occlusion is recomputed in the
// image plane.
func ProjectFrame(cam geometry.Camera, f Frame) (video.Frame, []Object3D) {
	vf := video.Frame{Index: f.Global, Time: f.Time}
	var visible []Object3D
	for _, o := range f.Objects {
		box2d, ok := cam.ProjectBox(o.Box)
		if !ok {
			continue
		}
		vo := video.Object{
			TrackID: o.TrackID,
			Class:   o.Class,
			Box:     box2d,
			Small:   box2d.Area() < 4000, // distant vehicle (a car beyond ~55 m)
			// Night-style low contrast does not apply to the AV domain.
			LowContrast: false,
		}
		vf.Objects = append(vf.Objects, vo)
		visible = append(visible, o)
	}
	markImageOcclusions(vf.Objects)
	return vf, visible
}

// markImageOcclusions flags objects substantially covered by a nearer
// object in the image plane. Proximity is approximated by box area
// (larger = closer).
func markImageOcclusions(objs []video.Object) {
	for i := range objs {
		a := &objs[i]
		areaA := a.Box.Area()
		if areaA <= 0 {
			continue
		}
		for j := range objs {
			if i == j {
				continue
			}
			b := objs[j]
			if b.Box.Area() <= areaA {
				continue
			}
			if a.Box.IntersectionArea(b.Box)/areaA > 0.5 {
				a.Occluded = true
				break
			}
		}
	}
}
