package lidar

import (
	"omg/internal/geometry"
	"omg/internal/simrand"
)

// Detection3D is one output of the simulated LIDAR detector.
type Detection3D struct {
	Box   geometry.Box3D
	Class string
	Score float64
	// GTTrack is simulation provenance (0 for false positives), used only
	// by tests and experiment accounting.
	GTTrack int
}

// DetectorParams configures the simulated LIDAR (Second/PointPillars
// stand-in) detector. LIDAR failure modes differ from the camera's: range
// sparsity drives misses, and box extents can be estimated badly (the
// paper's Figure 8b shows the LIDAR model predicting a truck "too
// large"), which is what the cross-sensor agree assertion catches from
// the LIDAR side.
type DetectorParams struct {
	// MissNear/MissFar are miss probabilities at ranges 0 and 75 m;
	// interpolated linearly in between.
	MissNear, MissFar float64
	// OversizeRate is the probability a detection's extents are badly
	// wrong (1.5-2.2x too large).
	OversizeRate float64
	// FPRate is the per-frame probability of each of up to 2 hallucinated
	// boxes.
	FPRate float64
	// DriftRate scales centre jitter (metres).
	DriftRate float64
}

// DefaultDetectorParams matches a LIDAR model bootstrapped on a few
// hundred scenes (the paper trains it on 350 NuScenes scenes): decent
// close-range recall, degrading with distance.
func DefaultDetectorParams() DetectorParams {
	return DetectorParams{
		MissNear:     0.06,
		MissFar:      0.55,
		OversizeRate: 0.07,
		FPRate:       0.05,
		DriftRate:    0.25,
	}
}

// Detector is the simulated LIDAR 3D detector. It is deliberately *not*
// trainable in the AV experiments — the paper bootstraps the LIDAR model
// once and improves the camera (SSD) model against it.
type Detector struct {
	seed   int64
	params DetectorParams
}

// NewDetector builds a LIDAR detector.
func NewDetector(seed int64, params DetectorParams) *Detector {
	return &Detector{seed: seed, params: params}
}

const (
	evLMiss int64 = iota + 100
	evLOversize
	evLFP
	evLGeom
	evLConf
)

// missRate interpolates the miss probability at the given range.
func (d *Detector) missRate(distance float64) float64 {
	frac := distance / 75
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	return d.params.MissNear + (d.params.MissFar-d.params.MissNear)*frac
}

// Detect runs the LIDAR detector on one frame.
func (d *Detector) Detect(f Frame) []Detection3D {
	var out []Detection3D
	gi := int64(f.Global)
	for _, o := range f.Objects {
		tid := int64(o.TrackID)
		if simrand.HashUniform(d.seed, evLMiss, tid, gi) < d.missRate(o.Distance) {
			continue
		}
		g := simrand.HashRNG(d.seed, evLGeom, tid, gi)
		det := Detection3D{
			Class:   o.Class,
			GTTrack: o.TrackID,
			Box:     o.Box,
		}
		det.Box.Center.X += g.Gaussian(0, d.params.DriftRate)
		det.Box.Center.Y += g.Gaussian(0, d.params.DriftRate)
		det.Box.Yaw += g.Gaussian(0, 0.05)
		if simrand.HashUniform(d.seed, evLOversize, tid, gi) < d.params.OversizeRate {
			factor := g.Uniform(1.5, 2.2)
			det.Box.Length *= factor
			det.Box.Width *= factor
		} else {
			det.Box.Length *= g.Uniform(0.95, 1.05)
			det.Box.Width *= g.Uniform(0.95, 1.05)
		}
		cg := simrand.HashRNG(d.seed, evLConf, tid, gi)
		det.Score = 0.4 + 0.6*cg.Beta(6, 2)
		out = append(out, det)
	}
	for k := int64(0); k < 2; k++ {
		if simrand.HashUniform(d.seed, evLFP, gi, k) >= d.params.FPRate {
			continue
		}
		g := simrand.HashRNG(d.seed, evLFP+50, gi, k)
		out = append(out, Detection3D{
			Box: geometry.Box3D{
				Center: geometry.Vec3{X: g.Uniform(-20, 20), Y: g.Uniform(8, 60), Z: 0.8},
				Length: g.Uniform(3.5, 6), Width: g.Uniform(1.6, 2.4), Height: 1.6,
				Yaw: g.Uniform(0, 6.28),
			},
			Class: "car",
			Score: 0.3 + 0.5*g.Beta(2, 3),
		})
	}
	return out
}
