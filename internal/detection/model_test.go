package detection

import (
	"math"
	"sort"
	"testing"

	"omg/internal/metrics"
	"omg/internal/video"
)

func testFrames(t *testing.T, n int) []video.Frame {
	t.Helper()
	return video.Generate(video.Config{Seed: 11, NumFrames: n})
}

func TestDetectDeterministic(t *testing.T) {
	frames := testFrames(t, 50)
	m1 := New(1, DefaultParams())
	m2 := New(1, DefaultParams())
	for _, f := range frames {
		a, b := m1.Detect(f), m2.Detect(f)
		if len(a) != len(b) {
			t.Fatalf("frame %d: %d vs %d detections", f.Index, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("frame %d det %d differs: %+v vs %+v", f.Index, i, a[i], b[i])
			}
		}
	}
}

func TestDetectSeedChangesErrors(t *testing.T) {
	frames := testFrames(t, 100)
	m1, m2 := New(1, DefaultParams()), New(2, DefaultParams())
	d1, d2 := 0, 0
	for _, f := range frames {
		d1 += len(m1.Detect(f))
		d2 += len(m2.Detect(f))
	}
	if d1 == d2 {
		t.Skip("seeds coincidentally identical counts") // vanishingly unlikely
	}
}

func TestRateDecaysWithExposure(t *testing.T) {
	m := New(1, DefaultParams())
	before := m.Rate(ModeFlicker)
	m.AddExposure(ModeFlicker, 500)
	after := m.Rate(ModeFlicker)
	if after >= before {
		t.Fatalf("rate did not decay: %v -> %v", before, after)
	}
	floor := DefaultParams().Modes[ModeFlicker].Floor
	m.AddExposure(ModeFlicker, 1e9)
	if got := m.Rate(ModeFlicker); math.Abs(got-floor) > 1e-9 {
		t.Fatalf("rate floor = %v, want %v", got, floor)
	}
}

func TestRateUnknownModeZero(t *testing.T) {
	m := New(1, Params{Modes: map[Mode]ModeParams{}, MaxFPPerFrame: 1})
	if m.Rate(ModeFlicker) != 0 {
		t.Fatal("unconfigured mode should have rate 0")
	}
}

func TestAddExposureIgnoresNonPositive(t *testing.T) {
	m := New(1, DefaultParams())
	m.AddExposure(ModeFlicker, -10)
	m.AddExposure(ModeFlicker, 0)
	if m.Exposure(ModeFlicker) != 0 {
		t.Fatal("non-positive exposure was recorded")
	}
}

func TestTrainingReducesErrors(t *testing.T) {
	frames := testFrames(t, 300)
	m := New(1, DefaultParams())
	countErrors := func() (misses, dups int, flipRate float64) {
		tps, flips := 0, 0
		for _, f := range frames {
			dets := m.Detect(f)
			found := make(map[int]bool)
			for _, d := range dets {
				switch d.Provenance {
				case ProvDuplicate:
					dups++
				case ProvTruePositive:
					tps++
					found[d.GTTrack] = true
					if d.Flipped {
						flips++
					}
				}
			}
			for _, o := range f.Objects {
				if !found[o.TrackID] {
					misses++
				}
			}
		}
		if tps > 0 {
			flipRate = float64(flips) / float64(tps)
		}
		return
	}
	countFlipRealizations := func() int {
		// Visible flip fractions on a single short scene are dominated by
		// small-sample noise (few tracks), so the flip invariant is
		// checked on the realisation probability itself over many
		// synthetic (track, block) events.
		hits := 0
		for tid := int64(1); tid <= 1000; tid++ {
			for block := int64(0); block < 12; block++ {
				if m.realized(ModeClassFlip, evClassFlip, tid, block) {
					hits++
				}
			}
		}
		return hits
	}
	m0, d0, _ := countErrors()
	fl0 := countFlipRealizations()
	for i := 0; i < 3; i++ {
		m.Train(frames, 1)
	}
	m1, d1, _ := countErrors()
	fl1 := countFlipRealizations()
	if m1 >= m0 {
		t.Fatalf("misses did not decrease: %d -> %d", m0, m1)
	}
	if d1 >= d0 {
		t.Fatalf("duplicates did not decrease: %d -> %d", d0, d1)
	}
	if fl1 >= fl0 {
		t.Fatalf("class-flip realisations did not decrease: %d -> %d", fl0, fl1)
	}
}

func TestTrainingMonotoneErrorRemoval(t *testing.T) {
	// Error *events* are realised by hashing against the current rate, so
	// training can only remove them. Observable consequence: the set of
	// missed (frame, track) pairs after training is a subset of the set
	// before. (Duplicates can *surface* when a previously-missed object
	// becomes visible, so the subset property is stated on misses.)
	frames := testFrames(t, 600)
	m := New(3, DefaultParams())
	missed := func() map[[2]int]bool {
		out := make(map[[2]int]bool)
		for _, f := range frames {
			found := make(map[int]bool)
			for _, d := range m.Detect(f) {
				if d.Provenance == ProvTruePositive {
					found[d.GTTrack] = true
				}
			}
			for _, o := range f.Objects {
				if !found[o.TrackID] {
					out[[2]int{f.Index, o.TrackID}] = true
				}
			}
		}
		return out
	}
	before := missed()
	for i := 0; i < 4; i++ {
		m.Train(frames, 1)
	}
	after := missed()
	for k := range after {
		if !before[k] {
			t.Fatalf("new miss appeared after training: frame %d track %d", k[0], k[1])
		}
	}
	if len(after) >= len(before) {
		t.Fatalf("training removed no misses: %d -> %d", len(before), len(after))
	}
}

func TestTrainZeroWeightNoop(t *testing.T) {
	frames := testFrames(t, 20)
	m := New(1, DefaultParams())
	m.Train(frames, 0)
	for _, mode := range Modes() {
		if m.Exposure(mode) != 0 {
			t.Fatalf("zero-weight training changed exposure of %v", mode)
		}
	}
}

func TestClone(t *testing.T) {
	m := New(1, DefaultParams())
	m.AddExposure(ModeFlicker, 100)
	c := m.Clone()
	if c.Rate(ModeFlicker) != m.Rate(ModeFlicker) {
		t.Fatal("clone rate differs")
	}
	c.AddExposure(ModeFlicker, 100)
	if c.Rate(ModeFlicker) >= m.Rate(ModeFlicker) {
		t.Fatal("clone not independent")
	}
}

func TestDuplicatesOverlapOriginal(t *testing.T) {
	frames := testFrames(t, 300)
	m := New(1, DefaultParams())
	foundDup := false
	for _, f := range frames {
		dets := m.Detect(f)
		byTrack := make(map[int][]Detection)
		for _, d := range dets {
			if d.GTTrack != 0 {
				byTrack[d.GTTrack] = append(byTrack[d.GTTrack], d)
			}
		}
		for _, group := range byTrack {
			if len(group) < 3 {
				continue
			}
			foundDup = true
			for i := 1; i < len(group); i++ {
				if group[0].Box.IoU(group[i].Box) < 0.3 {
					t.Fatalf("duplicate does not overlap original: IoU = %v",
						group[0].Box.IoU(group[i].Box))
				}
			}
		}
	}
	if !foundDup {
		t.Fatal("no duplicate (multibox) errors generated in 300 frames")
	}
}

func TestHighConfidenceErrorStructure(t *testing.T) {
	// Systematic errors (duplicates, flips) must be high-confidence
	// relative to the overall box population — the Figure 3 phenomenon.
	frames := testFrames(t, 400)
	m := New(1, DefaultParams())
	var all, systematic []float64
	for _, f := range frames {
		for _, d := range m.Detect(f) {
			all = append(all, d.Score)
			if d.Provenance == ProvDuplicate || d.Flipped {
				systematic = append(systematic, d.Score)
			}
		}
	}
	if len(systematic) < 10 {
		t.Fatalf("too few systematic errors: %d", len(systematic))
	}
	// The Figure 3 phenomenon: the most confident systematic errors rank
	// in a high percentile of the overall confidence distribution, so
	// uncertainty-based sampling cannot find them.
	sort.Float64s(systematic)
	top := systematic[len(systematic)-1]
	if rank := metrics.PercentileRank(all, top); rank < 85 {
		t.Fatalf("top systematic error only at percentile %.1f", rank)
	}
	// And the typical systematic error is not low-confidence either.
	median := systematic[len(systematic)/2]
	if rank := metrics.PercentileRank(all, median); rank < 30 {
		t.Fatalf("median systematic error at percentile %.1f: too easy for uncertainty sampling", rank)
	}
}

func TestFlipClassNeverIdentity(t *testing.T) {
	for tid := int64(0); tid < 200; tid++ {
		for _, c := range video.Classes {
			if got := flipClass(c, 9, tid, 0); got == c {
				t.Fatalf("flipClass returned the true class %q", c)
			}
		}
	}
}

func TestEvaluateMAPInRangeAndImproves(t *testing.T) {
	frames := testFrames(t, 150)
	m := New(1, DefaultParams())
	before := m.EvaluateMAP(frames)
	if before <= 0 || before >= 1 {
		t.Fatalf("initial mAP = %v out of (0,1)", before)
	}
	train := video.Generate(video.Config{Seed: 12, NumFrames: 400})
	m.Train(train, 1)
	m.Train(train, 1)
	after := m.EvaluateMAP(frames)
	if after <= before {
		t.Fatalf("mAP did not improve: %v -> %v", before, after)
	}
}

func TestAssessFrameCountsRealizedErrors(t *testing.T) {
	frames := testFrames(t, 200)
	m := New(1, DefaultParams())
	totalFlicker := 0.0
	for _, f := range frames {
		c := m.AssessFrame(f)
		for mode, v := range c {
			if v < 0 {
				t.Fatalf("negative count for %v", mode)
			}
		}
		totalFlicker += c[ModeFlicker]
	}
	if totalFlicker == 0 {
		t.Fatal("no flicker instances assessed in 200 frames")
	}
}

func TestTrainWeakTargetsMode(t *testing.T) {
	m := New(1, DefaultParams())
	m.TrainWeak(WeakFlickerFill, 100)
	if m.Exposure(ModeFlicker) <= 0 {
		t.Fatal("weak flicker labels did not add flicker exposure")
	}
	if m.Exposure(ModeDuplicate) != 0 {
		t.Fatal("weak flicker labels leaked into duplicate mode")
	}
	m2 := New(1, DefaultParams())
	m2.TrainWeak(WeakCrossSensorBox, 50)
	if m2.Exposure(ModeMissSmall) <= 0 || m2.Exposure(ModeMissOccluded) <= 0 {
		t.Fatal("cross-sensor weak labels did not teach miss modes")
	}
	m2.TrainWeak(WeakDuplicateRemoval, 0)
	if m2.Exposure(ModeDuplicate) != 0 {
		t.Fatal("zero-count weak training changed exposure")
	}
}

func TestModeString(t *testing.T) {
	for _, mode := range Modes() {
		if mode.String() == "" {
			t.Fatalf("mode %d has empty name", mode)
		}
	}
	if Mode(99).String() != "mode(99)" {
		t.Fatalf("unknown mode string = %q", Mode(99).String())
	}
}
