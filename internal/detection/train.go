package detection

import (
	"omg/internal/video"
)

// ModeCounts tallies, per error mode, how many teachable instances a set
// of frames contains for the *current* model: realised errors plus the
// hard-context objects the mode concerns. Labeling a frame whose errors
// are realised is what teaches the model — this is the mechanism that
// makes assertion-flagged data more valuable than random data, because
// assertions fire precisely on realised systematic errors.
type ModeCounts map[Mode]float64

// AssessFrame computes the teachable-instance counts of one frame under
// the current model state.
func (m *Model) AssessFrame(frame video.Frame) ModeCounts {
	counts := make(ModeCounts)
	fi := int64(frame.Index)
	for _, obj := range frame.Objects {
		tid := int64(obj.TrackID)

		// Realised misses teach strongly (the label reveals an object the
		// model cannot currently see); a *visible* hard example teaches
		// only marginally — which is why least-confident sampling, which
		// can only select what the model detected, underperforms here.
		if obj.Small {
			if m.realized(ModeMissSmall, evMissSmall, tid, 0) {
				counts[ModeMissSmall]++
			} else {
				counts[ModeMissSmall] += 0.08
			}
		}
		if obj.LowContrast {
			if m.realized(ModeMissLowContrast, evMissLowContrast, tid, 0) {
				counts[ModeMissLowContrast]++
			} else {
				counts[ModeMissLowContrast] += 0.08
			}
		}
		if obj.Occluded {
			if m.realized(ModeMissOccluded, evMissOccluded, tid, fi/occlusionBlock) {
				counts[ModeMissOccluded]++
			} else {
				counts[ModeMissOccluded] += 0.08
			}
		}
		if m.realized(ModeFlicker, evFlicker, tid, fi) {
			counts[ModeFlicker]++
		}
		if m.realized(ModeDuplicate, evDuplicate, tid, fi) {
			counts[ModeDuplicate]++
		}
		if m.realized(ModeClassFlip, evClassFlip, tid, fi/classFlipBlock) {
			counts[ModeClassFlip]++
		}
		// Every labeled object refines localisation a little.
		counts[ModeLocalization] += 0.5
	}
	for k := 0; k < m.params.MaxFPPerFrame; k++ {
		if m.realized(ModeFalsePositive, evFalsePositive, fi, int64(k)) {
			counts[ModeFalsePositive]++
		}
	}
	return counts
}

// Train fine-tunes the model on human-labeled frames: each frame's
// teachable instances add effective exposure to the corresponding modes.
// weight scales the exposure (1 for full human labels).
func (m *Model) Train(frames []video.Frame, weight float64) {
	if weight <= 0 {
		return
	}
	// Assess against the model state at the *start* of the batch: a batch
	// is one gradient pass over data collected before training, matching
	// the paper's round structure.
	total := make(ModeCounts)
	for _, f := range frames {
		for mode, c := range m.AssessFrame(f) {
			total[mode] += c
		}
	}
	for mode, c := range total {
		m.exposure[mode] += c * weight
	}
}

// WeakKind identifies the kind of weak label being applied, which
// determines the modes it can teach (a weak label only carries the
// information its correction rule reconstructs).
type WeakKind int

const (
	// WeakFlickerFill is an imputed box for a flickered-out detection
	// (correction: average of nearby frames). Teaches the flicker mode.
	WeakFlickerFill WeakKind = iota
	// WeakDuplicateRemoval removes multibox duplicates. Teaches the
	// duplicate mode.
	WeakDuplicateRemoval
	// WeakClassMajority replaces an inconsistent class with the track
	// majority. Teaches the class-flip mode.
	WeakClassMajority
	// WeakCrossSensorBox is a 2D box imputed from a 3D detection
	// (the AV weak-supervision rule). Teaches the context miss modes.
	WeakCrossSensorBox
	// WeakTransientRemoval removes transient (appear) detections, which
	// are mostly hallucinations. Teaches the false-positive mode.
	WeakTransientRemoval
)

// weakExposure is the effective exposure one weak label contributes to
// its target mode, relative to a human label (< 1: weak labels are
// noisier, per the weak-supervision literature the paper builds on).
const weakExposure = 0.45

// TrainWeak applies weak labels: count labels of the given kind.
func (m *Model) TrainWeak(kind WeakKind, count int) {
	if count <= 0 {
		return
	}
	amount := weakExposure * float64(count)
	switch kind {
	case WeakFlickerFill:
		m.exposure[ModeFlicker] += amount
		// Filled boxes also refine localisation slightly.
		m.exposure[ModeLocalization] += amount * 0.3
	case WeakDuplicateRemoval:
		m.exposure[ModeDuplicate] += amount
	case WeakClassMajority:
		m.exposure[ModeClassFlip] += amount
	case WeakCrossSensorBox:
		// Imputed boxes point directly at the objects the camera cannot
		// see: the strongest possible signal for the miss modes.
		m.exposure[ModeMissSmall] += amount * 2
		m.exposure[ModeMissLowContrast] += amount * 2
		m.exposure[ModeMissOccluded] += amount * 2
	case WeakTransientRemoval:
		// Removed transient boxes are hallucinations and spurious
		// duplicates in roughly equal measure.
		m.exposure[ModeFalsePositive] += amount * 0.7
		m.exposure[ModeDuplicate] += amount * 0.7
	}
}
