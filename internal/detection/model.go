// Package detection implements a trainable *simulated* 2D object detector:
// the stand-in for the SSD model in the paper's video-analytics and AV
// experiments (§5.1). See DESIGN.md for the substitution argument.
//
// The detector's behaviour is governed by a set of systematic error modes
// (transient flicker misses, duplicate "multibox" detections, class flips,
// context-dependent misses, false positives, localisation jitter). Each
// mode has an error rate that decays exponentially with the model's
// *effective exposure* to training examples exhibiting that mode, giving
// the diminishing-returns (submodular) improvement structure the paper's
// BAL algorithm assumes (§3). Error events are realised deterministically
// by hashing (seed, mode, track, frame) against the current rate, so
// training monotonically removes coherent sets of errors — the analogue of
// fixing a systematic failure mode in a real model.
//
// Crucially for the paper's Figure 3, *systematic* errors (duplicates,
// flicker-adjacent boxes, class flips) draw confidence from the same
// high-confidence distribution as true positives: they are
// high-confidence errors that uncertainty-based monitoring cannot see.
package detection

import (
	"fmt"
	"math"
	"sort"

	"omg/internal/geometry"
	"omg/internal/simrand"
	"omg/internal/video"
)

// Mode identifies one systematic error mode of the simulated detector.
type Mode int

const (
	// ModeFlicker is a transient, per-frame miss of an otherwise-detected
	// object: the cause of the paper's flickering boxes (Figure 1).
	ModeFlicker Mode = iota
	// ModeDuplicate emits extra highly-overlapping boxes for one object:
	// the paper's multibox error (Figure 7).
	ModeDuplicate
	// ModeClassFlip outputs the wrong class for an object on one frame.
	ModeClassFlip
	// ModeMissSmall persistently misses small (distant) objects.
	ModeMissSmall
	// ModeMissLowContrast persistently misses poorly-lit objects.
	ModeMissLowContrast
	// ModeMissOccluded misses objects while they are occluded.
	ModeMissOccluded
	// ModeFalsePositive hallucinates background boxes.
	ModeFalsePositive
	// ModeLocalization adds jitter to box corners.
	ModeLocalization
	numModes
)

// Modes lists all error modes in order.
func Modes() []Mode {
	out := make([]Mode, numModes)
	for i := range out {
		out[i] = Mode(i)
	}
	return out
}

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeFlicker:
		return "flicker"
	case ModeDuplicate:
		return "duplicate"
	case ModeClassFlip:
		return "class-flip"
	case ModeMissSmall:
		return "miss-small"
	case ModeMissLowContrast:
		return "miss-low-contrast"
	case ModeMissOccluded:
		return "miss-occluded"
	case ModeFalsePositive:
		return "false-positive"
	case ModeLocalization:
		return "localization"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ModeParams sets one error mode's learning curve: the rate starts at
// Base and decays toward Floor with time constant Tau (in units of
// effective exposure):
//
//	rate = Floor + (Base - Floor) * exp(-exposure / Tau)
type ModeParams struct {
	Base, Floor, Tau float64
}

// Params configures the detector.
type Params struct {
	Modes map[Mode]ModeParams
	// MaxFPPerFrame bounds false positives per frame (default 3).
	MaxFPPerFrame int
}

// DefaultParams returns the error-mode configuration calibrated for the
// night-street reproduction: a pretrained-on-still-images detector
// deployed on video, with substantial flicker/duplicate/miss rates that
// fine-tuning on in-domain data can reduce.
func DefaultParams() Params {
	return Params{
		Modes: map[Mode]ModeParams{
			// Systematic, in-domain-fixable errors (what assertions
			// target): moderate rates, moderately fast learning curves.
			ModeFlicker:   {Base: 0.18, Floor: 0.005, Tau: 120},
			ModeDuplicate: {Base: 0.16, Floor: 0.005, Tau: 120},
			ModeClassFlip: {Base: 0.12, Floor: 0.01, Tau: 300},
			// Hard-context misses: high rates, slow learning (rare hard
			// examples need many labels).
			ModeMissSmall:       {Base: 0.62, Floor: 0.12, Tau: 500},
			ModeMissLowContrast: {Base: 0.52, Floor: 0.10, Tau: 500},
			ModeMissOccluded:    {Base: 0.45, Floor: 0.15, Tau: 400},
			ModeFalsePositive:   {Base: 0.07, Floor: 0.01, Tau: 350},
			ModeLocalization:    {Base: 0.30, Floor: 0.06, Tau: 600},
		},
		MaxFPPerFrame: 3,
	}
}

// AVCameraParams returns the error-mode configuration for the camera
// detector in the AV domain: the domain shift from still images to
// vehicle-mounted cameras is larger than to a fixed traffic camera, so
// context misses are heavier and learning curves slower — matching the
// paper's low absolute NuScenes SSD mAP (10-16%).
func AVCameraParams() Params {
	return Params{
		Modes: map[Mode]ModeParams{
			ModeFlicker:         {Base: 0.10, Floor: 0.01, Tau: 200},
			ModeDuplicate:       {Base: 0.12, Floor: 0.005, Tau: 150},
			ModeClassFlip:       {Base: 0.15, Floor: 0.02, Tau: 400},
			ModeMissSmall:       {Base: 0.75, Floor: 0.15, Tau: 600},
			ModeMissLowContrast: {Base: 0.30, Floor: 0.10, Tau: 500},
			ModeMissOccluded:    {Base: 0.60, Floor: 0.20, Tau: 500},
			ModeFalsePositive:   {Base: 0.10, Floor: 0.02, Tau: 350},
			ModeLocalization:    {Base: 0.35, Floor: 0.08, Tau: 700},
		},
		MaxFPPerFrame: 3,
	}
}

// Provenance records why the simulator emitted a detection. It exists for
// experiment accounting and tests only — real deployments do not know it,
// and no assertion or selection algorithm in this repository reads it.
type Provenance int

const (
	// ProvTruePositive is a detection of a real object.
	ProvTruePositive Provenance = iota
	// ProvDuplicate is an extra box from the duplicate error mode.
	ProvDuplicate
	// ProvFalsePositive is a hallucinated background box.
	ProvFalsePositive
)

// Detection is one output box of the simulated detector.
type Detection struct {
	Box   geometry.Box2D
	Class string
	Score float64
	// Provenance is simulation-internal ground truth about the error
	// source (see Provenance). Kept out of all algorithmic paths.
	Provenance Provenance
	// GTTrack is the ground-truth track this detection corresponds to
	// (0 for false positives). Simulation-internal, like Provenance.
	GTTrack int
	// Flipped marks a class-flip error. Simulation-internal.
	Flipped bool
}

// Model is the trainable simulated detector. The zero value is unusable;
// construct with New. Model is not safe for concurrent mutation; Detect is
// read-only and may be called concurrently with other Detects.
type Model struct {
	seed     int64
	params   Params
	exposure map[Mode]float64
}

// New returns a detector with the given identity seed and parameters. Two
// models with the same seed and parameters behave identically; the seed
// determines *which* objects/frames the systematic errors strike.
func New(seed int64, params Params) *Model {
	if params.Modes == nil {
		params = DefaultParams()
	}
	if params.MaxFPPerFrame <= 0 {
		params.MaxFPPerFrame = 3
	}
	return &Model{
		seed:     seed,
		params:   params,
		exposure: make(map[Mode]float64),
	}
}

// Clone returns an independent copy of the model (used by active-learning
// experiments to reset training state between strategies).
func (m *Model) Clone() *Model {
	c := New(m.seed, m.params)
	for k, v := range m.exposure {
		c.exposure[k] = v
	}
	return c
}

// Rate returns the current error rate for the mode.
func (m *Model) Rate(mode Mode) float64 {
	p, ok := m.params.Modes[mode]
	if !ok {
		return 0
	}
	return p.Floor + (p.Base-p.Floor)*math.Exp(-m.exposure[mode]/p.Tau)
}

// Exposure returns the accumulated effective exposure for the mode.
func (m *Model) Exposure(mode Mode) float64 { return m.exposure[mode] }

// AddExposure directly adds effective exposure to a mode (used by weak
// supervision, which teaches specific modes).
func (m *Model) AddExposure(mode Mode, amount float64) {
	if amount > 0 {
		m.exposure[mode] += amount
	}
}

// event domains keep hash streams for different decisions disjoint.
const (
	evFlicker int64 = iota + 1
	evDuplicate
	evClassFlip
	evMissSmall
	evMissLowContrast
	evMissOccluded
	evFalsePositive
	evConfidence
	evJitter
	evFPPlacement
	evDupGeometry
	evClassFlipTarget
)

// realized reports whether the error event identified by (ev, a, b) is
// realised under the current rate for the mode.
func (m *Model) realized(mode Mode, ev, a, b int64) bool {
	return simrand.HashUniform(m.seed, ev, a, b) < m.Rate(mode)
}

// Detect runs the simulated detector on one ground-truth frame.
func (m *Model) Detect(frame video.Frame) []Detection {
	var out []Detection
	fi := int64(frame.Index)

	for _, obj := range frame.Objects {
		tid := int64(obj.TrackID)

		// Persistent context misses: realised per-track (frame-independent)
		// so a hard object is missed for its whole life, not flickering.
		if obj.Small && m.realized(ModeMissSmall, evMissSmall, tid, 0) {
			continue
		}
		if obj.LowContrast && m.realized(ModeMissLowContrast, evMissLowContrast, tid, 0) {
			continue
		}
		// Occlusion misses are realised per *block* of frames, not per
		// frame: a real detector loses an occluded object for a sustained
		// stretch, which keeps these misses distinct from sub-second
		// flicker (they exceed the temporal-consistency threshold).
		if obj.Occluded && m.realized(ModeMissOccluded, evMissOccluded, tid, fi/occlusionBlock) {
			continue
		}
		// Transient flicker miss.
		if m.realized(ModeFlicker, evFlicker, tid, fi) {
			continue
		}

		det := m.emit(obj, fi, tid)
		out = append(out, det)

		// Duplicate (multibox) errors: two extra near-copies, so three
		// boxes highly overlap — the paper's multibox signature.
		if m.realized(ModeDuplicate, evDuplicate, tid, fi) {
			for k := int64(0); k < 2; k++ {
				dup := det
				g := simrand.HashRNG(m.seed, evDupGeometry, tid, fi*8+k)
				dx := g.Uniform(-0.12, 0.12) * det.Box.Width()
				dy := g.Uniform(-0.12, 0.12) * det.Box.Height()
				dup.Box = det.Box.Translate(dx, dy).Scale(g.Uniform(0.9, 1.1))
				dup.Score = clamp01(det.Score + g.Uniform(-0.08, 0.02))
				dup.Provenance = ProvDuplicate
				out = append(out, dup)
			}
		}
	}

	// False positives: up to MaxFPPerFrame independent hallucinations.
	for k := 0; k < m.params.MaxFPPerFrame; k++ {
		if !m.realized(ModeFalsePositive, evFalsePositive, fi, int64(k)) {
			continue
		}
		g := simrand.HashRNG(m.seed, evFPPlacement, fi, int64(k))
		w := g.Uniform(40, 140)
		h := w * g.Uniform(0.5, 0.9)
		cx := g.Uniform(w/2, 1280-w/2)
		cy := g.Uniform(h/2, 720-h/2)
		out = append(out, Detection{
			Box:        geometry.BoxFromCenter(cx, cy, w, h),
			Class:      video.Classes[g.Choice(len(video.Classes))],
			Score:      clamp01(g.Beta(2.5, 4)),
			Provenance: ProvFalsePositive,
		})
	}
	return out
}

// emit builds the (possibly corrupted) detection for a visible object.
func (m *Model) emit(obj video.Object, fi, tid int64) Detection {
	det := Detection{
		Class:      obj.Class,
		Provenance: ProvTruePositive,
		GTTrack:    obj.TrackID,
	}

	// Localisation jitter scaled by the localisation error rate.
	jitter := m.Rate(ModeLocalization)
	g := simrand.HashRNG(m.seed, evJitter, tid, fi)
	dx := g.Gaussian(0, jitter*0.12) * obj.Box.Width()
	dy := g.Gaussian(0, jitter*0.12) * obj.Box.Height()
	scale := 1 + g.Gaussian(0, jitter*0.1)
	if scale < 0.5 {
		scale = 0.5
	}
	det.Box = obj.Box.Translate(dx, dy).Scale(scale)

	// Class flip: systematic high-confidence error, realised per block of
	// frames (the model confuses *this* vehicle for a while, not for a
	// single frame), so within-track class inconsistency is coherent.
	if m.realized(ModeClassFlip, evClassFlip, tid, fi/classFlipBlock) {
		det.Class = flipClass(obj.Class, m.seed, tid, fi/classFlipBlock)
		det.Flipped = true
	}

	// Confidence: hard contexts draw from a low/uncertain distribution;
	// everything else — including flipped classes and (via Detect)
	// duplicates — draws from the confident distribution. That is the
	// high-confidence-error structure of Figure 3.
	cg := simrand.HashRNG(m.seed, evConfidence, tid, fi)
	if obj.Small || obj.LowContrast || obj.Occluded {
		det.Score = clamp01(cg.Beta(3.5, 3.5)) // mean 0.5: uncertain
	} else {
		det.Score = clamp01(0.5 + 0.5*cg.Beta(8, 2)) // mean 0.9: confident
	}
	return det
}

// Block sizes (in frames) over which blocky error modes persist.
const (
	occlusionBlock = 12
	classFlipBlock = 25
)

// classPrior is the approximate class frequency in the synthetic scenes;
// flips land on wrong classes proportionally to how common they are
// (detectors confuse an object with a *plausible* alternative), which
// keeps rare classes from being flooded with high-confidence false
// positives.
var classPrior = map[string]float64{"car": 0.7, "truck": 0.2, "bus": 0.1}

// flipClass deterministically picks a wrong class, weighted by class
// frequency.
func flipClass(true_ string, seed, tid, fi int64) string {
	var others []string
	for _, c := range video.Classes {
		if c != true_ {
			others = append(others, c)
		}
	}
	sort.Strings(others)
	total := 0.0
	for _, c := range others {
		total += classPrior[c]
	}
	target := simrand.HashUniform(seed, evClassFlipTarget, tid, fi) * total
	acc := 0.0
	for _, c := range others {
		acc += classPrior[c]
		if target < acc {
			return c
		}
	}
	return others[len(others)-1]
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
