package detection

import (
	"omg/internal/metrics"
	"omg/internal/video"
)

// DetectAll runs the detector over every frame, returning per-frame
// detections indexed like the input.
func (m *Model) DetectAll(frames []video.Frame) [][]Detection {
	out := make([][]Detection, len(frames))
	for i, f := range frames {
		out[i] = m.Detect(f)
	}
	return out
}

// EvaluateMAP runs the detector over the frames and scores it against the
// ground truth with COCO-style mAP at IoU 0.5.
func (m *Model) EvaluateMAP(frames []video.Frame) float64 {
	dets, gts := ToMetrics(m.DetectAll(frames), frames)
	return metrics.NewEvaluator().MAP(dets, gts).MAP
}

// ToMetrics converts per-frame detections and ground-truth frames into the
// evaluator's flat record types.
func ToMetrics(dets [][]Detection, frames []video.Frame) ([]metrics.Det, []metrics.GT) {
	var md []metrics.Det
	var mg []metrics.GT
	for i, frame := range frames {
		for _, o := range frame.Objects {
			mg = append(mg, metrics.GT{Frame: frame.Index, Class: o.Class, Box: o.Box})
		}
		if i < len(dets) {
			for _, d := range dets[i] {
				md = append(md, metrics.Det{Frame: frame.Index, Class: d.Class, Box: d.Box, Score: d.Score})
			}
		}
	}
	return md, mg
}
