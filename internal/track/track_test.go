package track

import (
	"testing"

	"omg/internal/geometry"
)

func b(x, y, w, h float64) geometry.Box2D { return geometry.NewBox2D(x, y, x+w, y+h) }

func TestTrackerContinuesTrack(t *testing.T) {
	tr := NewTracker()
	a := tr.Update(0, []Observation{{Box: b(0, 0, 10, 10), Class: "car"}})
	c := tr.Update(1, []Observation{{Box: b(1, 0, 10, 10), Class: "car"}})
	if a[0].TrackID != c[0].TrackID {
		t.Fatalf("moving object changed track: %d vs %d", a[0].TrackID, c[0].TrackID)
	}
}

func TestTrackerNewTrackForDistantBox(t *testing.T) {
	tr := NewTracker()
	a := tr.Update(0, []Observation{{Box: b(0, 0, 10, 10)}})
	c := tr.Update(1, []Observation{{Box: b(500, 500, 10, 10)}})
	if a[0].TrackID == c[0].TrackID {
		t.Fatal("distant box joined existing track")
	}
}

func TestTrackerSurvivesGap(t *testing.T) {
	tr := NewTracker() // MaxGap = 2
	a := tr.Update(0, []Observation{{Box: b(0, 0, 10, 10)}})
	// Frames 1 and 2: object missing (flicker).
	tr.Update(1, nil)
	tr.Update(2, nil)
	c := tr.Update(3, []Observation{{Box: b(0, 0, 10, 10)}})
	if a[0].TrackID != c[0].TrackID {
		t.Fatal("track did not survive a gap within MaxGap")
	}
}

func TestTrackerRetiresAfterMaxGap(t *testing.T) {
	tr := NewTracker()
	a := tr.Update(0, []Observation{{Box: b(0, 0, 10, 10)}})
	for f := 1; f <= 4; f++ {
		tr.Update(f, nil)
	}
	c := tr.Update(5, []Observation{{Box: b(0, 0, 10, 10)}})
	if a[0].TrackID == c[0].TrackID {
		t.Fatal("track survived beyond MaxGap")
	}
}

func TestTrackerGreedyPrefersHigherIoU(t *testing.T) {
	tr := NewTracker()
	tr.Update(0, []Observation{
		{Box: b(0, 0, 10, 10), Ref: 0},
		{Box: b(8, 0, 10, 10), Ref: 1},
	})
	// One new box overlapping both previous boxes, closer to the second.
	out := tr.Update(1, []Observation{{Box: b(7, 0, 10, 10), Ref: 2}})
	tracks := tr.Tracks()
	if len(tracks) != 2 {
		t.Fatalf("tracks = %d", len(tracks))
	}
	// The new observation should continue the track whose last box is at
	// x=8 (higher IoU), which is track ID 2.
	if out[0].TrackID != 2 {
		t.Fatalf("assigned track %d, want 2", out[0].TrackID)
	}
}

func TestTrackerClassFlipDoesNotBreakTrack(t *testing.T) {
	tr := NewTracker()
	a := tr.Update(0, []Observation{{Box: b(0, 0, 10, 10), Class: "car"}})
	c := tr.Update(1, []Observation{{Box: b(0, 0, 10, 10), Class: "truck"}})
	if a[0].TrackID != c[0].TrackID {
		t.Fatal("class flip broke the track")
	}
}

func TestMajorityClass(t *testing.T) {
	tr := NewTracker()
	tr.Update(0, []Observation{{Box: b(0, 0, 10, 10), Class: "car"}})
	tr.Update(1, []Observation{{Box: b(0, 0, 10, 10), Class: "truck"}})
	tr.Update(2, []Observation{{Box: b(0, 0, 10, 10), Class: "car"}})
	tracks := tr.Tracks()
	if len(tracks) != 1 {
		t.Fatalf("tracks = %d", len(tracks))
	}
	if got := tracks[0].MajorityClass(); got != "car" {
		t.Fatalf("MajorityClass = %q", got)
	}
}

func TestMajorityClassTieBreaksLexicographically(t *testing.T) {
	tk := &Track{Obs: []TrackedObservation{
		{Observation: Observation{Class: "truck"}},
		{Observation: Observation{Class: "car"}},
	}}
	if got := tk.MajorityClass(); got != "car" {
		t.Fatalf("tie break = %q", got)
	}
}

func TestMajorityClassEmpty(t *testing.T) {
	if got := (&Track{}).MajorityClass(); got != "" {
		t.Fatalf("empty majority = %q", got)
	}
}

func TestTrackerMultipleObjects(t *testing.T) {
	tr := NewTracker()
	// Two objects crossing paths but never overlapping enough to swap.
	var id0, id1 int
	for f := 0; f < 10; f++ {
		obs := []Observation{
			{Box: b(float64(f*5), 0, 10, 10), Class: "car"},
			{Box: b(float64(100-f*5), 50, 10, 10), Class: "truck"},
		}
		out := tr.Update(f, obs)
		if f == 0 {
			id0, id1 = out[0].TrackID, out[1].TrackID
		} else {
			if out[0].TrackID != id0 || out[1].TrackID != id1 {
				t.Fatalf("frame %d: ids = (%d,%d), want (%d,%d)",
					f, out[0].TrackID, out[1].TrackID, id0, id1)
			}
		}
	}
	if len(tr.Tracks()) != 2 {
		t.Fatalf("tracks = %d", len(tr.Tracks()))
	}
}

func TestTrackerObservationBookkeeping(t *testing.T) {
	tr := NewTracker()
	tr.Update(3, []Observation{{Box: b(0, 0, 10, 10), Ref: 42, Score: 0.9}})
	tracks := tr.Tracks()
	o := tracks[0].Obs[0]
	if o.Frame != 3 || o.Ref != 42 || o.Score != 0.9 {
		t.Fatalf("observation = %+v", o)
	}
	frames := tracks[0].Frames()
	if len(frames) != 1 || frames[0] != 3 {
		t.Fatalf("Frames = %v", frames)
	}
}

func TestTrackAll(t *testing.T) {
	frames := [][]Observation{
		{{Box: b(0, 0, 10, 10)}},
		{{Box: b(1, 0, 10, 10)}},
		{},
		{{Box: b(3, 0, 10, 10)}},
	}
	perFrame, tracks := TrackAll(frames)
	if len(perFrame) != 4 {
		t.Fatalf("perFrame = %d", len(perFrame))
	}
	if len(tracks) != 1 {
		t.Fatalf("tracks = %d (gap of 1 should not split)", len(tracks))
	}
	if len(tracks[0].Obs) != 3 {
		t.Fatalf("obs = %d", len(tracks[0].Obs))
	}
}

func TestTrackerEmptyFrames(t *testing.T) {
	tr := NewTracker()
	if out := tr.Update(0, nil); len(out) != 0 {
		t.Fatalf("Update(nil) = %v", out)
	}
	if len(tr.Tracks()) != 0 {
		t.Fatal("tracks created from empty frame")
	}
}
