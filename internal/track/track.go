// Package track implements a greedy IoU-based multi-object tracker. The
// paper's consistency assertions (§4) need identifiers for model outputs;
// for video domains that lack a globally unique identifier (no license
// plates), the paper assigns "a new identifier for each box that appears
// and ... the same identifier as it persists through the video". This
// package provides exactly that identifier assignment, and is also the
// substrate for the human-label validation experiment (Appendix E), which
// tracks objects across frames to check that the same object keeps the
// same label.
package track

import (
	"sort"

	"omg/internal/geometry"
)

// Observation is one detection handed to the tracker for one frame.
type Observation struct {
	// Box is the detection's bounding box.
	Box geometry.Box2D
	// Class is the detector's class label (carried through to the track,
	// not used for matching: class flips must not break the track, or
	// class-consistency assertions could never fire).
	Class string
	// Score is the detection confidence (carried through).
	Score float64
	// Ref is the caller's index for this observation.
	Ref int
}

// TrackedObservation is an observation annotated with its assigned track.
type TrackedObservation struct {
	Observation
	TrackID int
	Frame   int
}

// Track is the history of one tracked object.
type Track struct {
	ID        int
	Obs       []TrackedObservation
	lastFrame int
}

// Frames returns the frame indices the track was observed on.
func (t *Track) Frames() []int {
	out := make([]int, len(t.Obs))
	for i, o := range t.Obs {
		out[i] = o.Frame
	}
	return out
}

// MajorityClass returns the most common class label across the track's
// observations, breaking ties lexicographically. Empty tracks return "".
func (t *Track) MajorityClass() string {
	if len(t.Obs) == 0 {
		return ""
	}
	counts := make(map[string]int)
	for _, o := range t.Obs {
		counts[o.Class]++
	}
	best, bestN := "", -1
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	return best
}

// Tracker assigns stable identifiers to detections across frames by greedy
// IoU matching: each new detection is matched to the live track whose most
// recent box overlaps it the most, provided IoU exceeds the threshold.
// Tracks not matched for more than MaxGap frames are retired.
type Tracker struct {
	// IoUThreshold is the minimum overlap to continue a track (default
	// 0.3).
	IoUThreshold float64
	// MaxGap is how many frames a track may go unmatched before it is
	// retired (default 2). A gap of >= 1 is what lets flickering objects
	// re-join their track, which the flicker assertion depends on.
	MaxGap int

	nextID  int
	live    []*Track
	retired []*Track
}

// NewTracker returns a tracker with the default matching parameters.
func NewTracker() *Tracker {
	return &Tracker{IoUThreshold: 0.3, MaxGap: 2, nextID: 1}
}

// Update ingests the detections of one frame (frames must be presented in
// increasing order) and returns the observations annotated with track IDs.
// New tracks are created for unmatched detections.
func (tr *Tracker) Update(frame int, obs []Observation) []TrackedObservation {
	// Retire stale tracks first.
	maxGap := tr.MaxGap
	if maxGap < 0 {
		maxGap = 0
	}
	liveNext := tr.live[:0]
	for _, t := range tr.live {
		if frame-t.lastFrame > maxGap+1 {
			tr.retired = append(tr.retired, t)
		} else {
			liveNext = append(liveNext, t)
		}
	}
	tr.live = liveNext

	thr := tr.IoUThreshold
	if thr <= 0 {
		thr = 0.3
	}

	// Build all candidate (track, obs) pairs above threshold and match
	// greedily by descending IoU.
	type pair struct {
		track, obs int
		iou        float64
	}
	var pairs []pair
	for ti, t := range tr.live {
		last := t.Obs[len(t.Obs)-1].Box
		for oi, o := range obs {
			if iou := last.IoU(o.Box); iou >= thr {
				pairs = append(pairs, pair{track: ti, obs: oi, iou: iou})
			}
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].iou > pairs[j].iou })

	trackUsed := make(map[int]bool)
	obsUsed := make(map[int]bool)
	assignment := make(map[int]*Track) // obs index -> track
	for _, p := range pairs {
		if trackUsed[p.track] || obsUsed[p.obs] {
			continue
		}
		trackUsed[p.track] = true
		obsUsed[p.obs] = true
		assignment[p.obs] = tr.live[p.track]
	}

	out := make([]TrackedObservation, len(obs))
	for oi, o := range obs {
		t := assignment[oi]
		if t == nil {
			t = &Track{ID: tr.nextID}
			tr.nextID++
			tr.live = append(tr.live, t)
		}
		to := TrackedObservation{Observation: o, TrackID: t.ID, Frame: frame}
		t.Obs = append(t.Obs, to)
		t.lastFrame = frame
		out[oi] = to
	}
	return out
}

// Tracks returns all tracks (live and retired) sorted by ID.
func (tr *Tracker) Tracks() []*Track {
	out := make([]*Track, 0, len(tr.live)+len(tr.retired))
	out = append(out, tr.retired...)
	out = append(out, tr.live...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TrackAll is a convenience that runs a fresh tracker over per-frame
// detection lists (index = frame number) and returns the per-frame tracked
// observations plus the final track set.
func TrackAll(frames [][]Observation) ([][]TrackedObservation, []*Track) {
	tr := NewTracker()
	out := make([][]TrackedObservation, len(frames))
	for f, obs := range frames {
		out[f] = tr.Update(f, obs)
	}
	return out, tr.Tracks()
}
