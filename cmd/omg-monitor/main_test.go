package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"omg/internal/assertion"
	"omg/internal/obs"
)

// monitorBin is the omg-monitor binary built once by TestMain; empty when
// the go toolchain is unavailable (tests skip then).
var monitorBin string

func TestMain(m *testing.M) {
	var cleanup string
	if _, err := exec.LookPath("go"); err == nil {
		dir, err := os.MkdirTemp("", "omg-monitor-e2e")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cleanup = dir
		bin := filepath.Join(dir, "omg-monitor")
		if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
			os.RemoveAll(dir)
			fmt.Fprintf(os.Stderr, "building omg-monitor: %v\n%s", err, out)
			os.Exit(1)
		}
		monitorBin = bin
	}
	code := m.Run()
	if cleanup != "" {
		os.RemoveAll(cleanup)
	}
	os.Exit(code)
}

func needBinary(t *testing.T) string {
	t.Helper()
	if monitorBin == "" {
		t.Skip("go toolchain unavailable; cannot build omg-monitor")
	}
	return monitorBin
}

// readViolations parses a JSONL violation log.
func readViolations(t *testing.T, path string) []assertion.Violation {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open log: %v", err)
	}
	defer f.Close()
	var out []assertion.Violation
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var v assertion.Violation
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEndToEndJSONLSink(t *testing.T) {
	bin := needBinary(t)
	logPath := filepath.Join(t.TempDir(), "violations.jsonl")
	out, err := exec.Command(bin,
		"-frames", "300", "-streams", "3", "-workers", "2", "-log", logPath,
	).CombinedOutput()
	if err != nil {
		t.Fatalf("omg-monitor failed: %v\n%s", err, out)
	}

	vs := readViolations(t, logPath)
	if len(vs) == 0 {
		t.Fatal("no violations logged; the night-street domain should fire")
	}
	// Every logged violation must carry one of the driven stream keys.
	valid := map[string]bool{"cam-00": true, "cam-01": true, "cam-02": true}
	seen := map[string]bool{}
	for _, v := range vs {
		if !valid[v.Stream] {
			t.Fatalf("violation carries unknown stream key %q", v.Stream)
		}
		seen[v.Stream] = true
		if v.Assertion == "" || v.Severity <= 0 {
			t.Fatalf("malformed violation: %+v", v)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no stream keys in log")
	}
	// The dashboard total and the durable log must agree.
	m := regexp.MustCompile(`violations recorded: (\d+)`).FindSubmatch(out)
	if m == nil {
		t.Fatalf("summary line missing from output:\n%s", out)
	}
	total, _ := strconv.Atoi(string(m[1]))
	if total != len(vs) {
		t.Fatalf("summary reports %d violations, log holds %d", total, len(vs))
	}
}

func TestEndToEndUnwritableSinkPath(t *testing.T) {
	bin := needBinary(t)
	out, err := exec.Command(bin,
		"-frames", "50", "-log", filepath.Join(t.TempDir(), "no-such-dir", "v.jsonl"),
	).CombinedOutput()
	if err == nil {
		t.Fatalf("expected non-zero exit for unwritable sink path; output:\n%s", out)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("run error: %v", err)
	}
}

func TestEndToEndBadSinkFlags(t *testing.T) {
	bin := needBinary(t)
	logPath := filepath.Join(t.TempDir(), "v.jsonl")
	// Unknown backend, with and without -log, and a backend that needs a
	// log path but got none: all must fail loudly, never silently no-op.
	for _, args := range [][]string{
		{"-frames", "50", "-log", logPath, "-sink", "bogus"},
		{"-frames", "50", "-sink", "bogus"},
		{"-frames", "50", "-sink", "rotate"},
	} {
		if out, err := exec.Command(bin, args...).CombinedOutput(); err == nil {
			t.Fatalf("%v: expected non-zero exit; output:\n%s", args, out)
		}
	}
}

// TestEndToEndEdgeMetricsAndDebug scrapes a live omg-monitor's
// -metrics-addr and -debug-addr listeners while its HTTP export is held
// mid-flight by a gated collector, so the edge telemetry is read at a
// deterministic moment instead of racing the run to completion.
func TestEndToEndEdgeMetricsAndDebug(t *testing.T) {
	bin := needBinary(t)

	// A stand-in collector that accepts every batch but blocks the first
	// delivery until the test has finished scraping — keeping the monitor
	// alive (it cannot drain its exporter) without sleeps.
	gate := make(chan struct{})
	var gateOnce sync.Once
	firstBatch := make(chan struct{})
	collector := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		gateOnce.Do(func() { close(firstBatch) })
		<-gate
		w.WriteHeader(http.StatusOK)
	}))
	defer collector.Close()

	cmd := exec.Command(bin,
		"-frames", "300", "-streams", "2",
		"-sink", "http", "-export-url", collector.URL,
		"-export-retries", "10",
		"-metrics-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0",
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The handshake lines name the bound ports (-metrics-addr/-debug-addr
	// ended in :0); everything after them is the exit summary, collected
	// for the final assertions.
	sc := bufio.NewScanner(stdout)
	metricsRe := regexp.MustCompile(`omg-monitor metrics on (http://\S+/metrics)`)
	debugRe := regexp.MustCompile(`omg-monitor debug on (http://\S+/debug/pprof/)`)
	var metricsURL, debugURL string
	var tail strings.Builder
	tailDone := make(chan struct{})
	for sc.Scan() {
		line := sc.Text()
		if m := metricsRe.FindStringSubmatch(line); m != nil {
			metricsURL = m[1]
		}
		if m := debugRe.FindStringSubmatch(line); m != nil {
			debugURL = m[1]
		}
		if metricsURL != "" && debugURL != "" {
			break
		}
	}
	if metricsURL == "" || debugURL == "" {
		t.Fatalf("handshake lines missing (metrics=%q debug=%q)", metricsURL, debugURL)
	}
	go func() {
		defer close(tailDone)
		for sc.Scan() {
			tail.WriteString(sc.Text())
			tail.WriteByte('\n')
		}
	}()

	select {
	case <-firstBatch:
	case <-time.After(30 * time.Second):
		t.Fatal("monitor never shipped a batch to the gated collector")
	}

	// Edge /metrics: strictly parseable, with the pool and exporter
	// telemetry the fleet dashboards scrape.
	resp, err := http.Get(metricsURL)
	if err != nil {
		t.Fatalf("scrape edge metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edge /metrics returned %s", resp.Status)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("edge /metrics rejected by strict parser: %v\npage:\n%s", err, body)
	}
	for _, series := range []string{
		"# TYPE omg_observe_seconds histogram",
		"# TYPE omg_pool_queue_wait_seconds histogram",
		"# TYPE omg_export_deliver_seconds histogram",
		"# TYPE omg_pool_queue_depth gauge",
		"# TYPE omg_export_queue_depth gauge",
		"# TYPE omg_export_delivered_total counter",
		"# TYPE omg_export_retries_total counter",
		"# TYPE omg_export_dropped_total counter",
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("edge /metrics is missing %q", series)
		}
	}

	// The gated debug listener serves pprof.
	resp, err = http.Get(debugURL + "cmdline")
	if err != nil {
		t.Fatalf("scrape pprof: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline returned %s", resp.Status)
	}

	// Release the collector; the monitor drains its export and exits
	// cleanly, its summary naming the delivery stats. Stdout is read to
	// EOF before Wait so no summary line is lost.
	close(gate)
	<-tailDone
	if err := cmd.Wait(); err != nil {
		t.Fatalf("omg-monitor failed: %v\n%s", err, tail.String())
	}
	out := tail.String()
	if !regexp.MustCompile(`exported \d+ violations in \d+ batches .* \(\d+ retries, \d+ dropped, \d+ queued\)`).MatchString(out) {
		t.Fatalf("export summary with sink stats missing from output:\n%s", out)
	}
}

func TestEndToEndRotatingSink(t *testing.T) {
	bin := needBinary(t)
	logPath := filepath.Join(t.TempDir(), "violations.jsonl")
	out, err := exec.Command(bin,
		"-frames", "500", "-streams", "2", "-log", logPath,
		"-sink", "rotate", "-rotate-bytes", "2048", "-rotate-keep", "2",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("omg-monitor failed: %v\n%s", err, out)
	}
	if vs := readViolations(t, logPath); len(vs) == 0 {
		t.Fatal("active rotated log is empty")
	}
	if _, err := os.Stat(logPath + ".1"); err != nil {
		t.Fatalf("expected at least one rotation at 2 KiB: %v", err)
	}
	if _, err := os.Stat(logPath + ".3"); err == nil {
		t.Fatal("-rotate-keep 2 must prune the third rotated file")
	}
}

func TestEndToEndSamplingSinkAndPerStreamRecorders(t *testing.T) {
	bin := needBinary(t)
	logPath := filepath.Join(t.TempDir(), "violations.jsonl")
	out, err := exec.Command(bin,
		"-frames", "300", "-streams", "2", "-log", logPath,
		"-sink", "sample", "-sample-every", "5", "-per-stream-recorders",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("omg-monitor failed: %v\n%s", err, out)
	}
	m := regexp.MustCompile(`violations recorded: (\d+)`).FindSubmatch(out)
	if m == nil {
		t.Fatalf("summary line missing from output:\n%s", out)
	}
	total, _ := strconv.Atoi(string(m[1]))
	vs := readViolations(t, logPath)
	if len(vs) == 0 || len(vs) >= total {
		t.Fatalf("sampling should log fewer than the %d recorded violations, logged %d", total, len(vs))
	}
	if !regexp.MustCompile(`sink sampled out \d+ violations`).Match(out) {
		t.Fatalf("sampled-out count missing from summary:\n%s", out)
	}
}
