package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"omg/internal/assertion"
)

// monitorBin is the omg-monitor binary built once by TestMain; empty when
// the go toolchain is unavailable (tests skip then).
var monitorBin string

func TestMain(m *testing.M) {
	var cleanup string
	if _, err := exec.LookPath("go"); err == nil {
		dir, err := os.MkdirTemp("", "omg-monitor-e2e")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cleanup = dir
		bin := filepath.Join(dir, "omg-monitor")
		if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
			os.RemoveAll(dir)
			fmt.Fprintf(os.Stderr, "building omg-monitor: %v\n%s", err, out)
			os.Exit(1)
		}
		monitorBin = bin
	}
	code := m.Run()
	if cleanup != "" {
		os.RemoveAll(cleanup)
	}
	os.Exit(code)
}

func needBinary(t *testing.T) string {
	t.Helper()
	if monitorBin == "" {
		t.Skip("go toolchain unavailable; cannot build omg-monitor")
	}
	return monitorBin
}

// readViolations parses a JSONL violation log.
func readViolations(t *testing.T, path string) []assertion.Violation {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open log: %v", err)
	}
	defer f.Close()
	var out []assertion.Violation
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var v assertion.Violation
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEndToEndJSONLSink(t *testing.T) {
	bin := needBinary(t)
	logPath := filepath.Join(t.TempDir(), "violations.jsonl")
	out, err := exec.Command(bin,
		"-frames", "300", "-streams", "3", "-workers", "2", "-log", logPath,
	).CombinedOutput()
	if err != nil {
		t.Fatalf("omg-monitor failed: %v\n%s", err, out)
	}

	vs := readViolations(t, logPath)
	if len(vs) == 0 {
		t.Fatal("no violations logged; the night-street domain should fire")
	}
	// Every logged violation must carry one of the driven stream keys.
	valid := map[string]bool{"cam-00": true, "cam-01": true, "cam-02": true}
	seen := map[string]bool{}
	for _, v := range vs {
		if !valid[v.Stream] {
			t.Fatalf("violation carries unknown stream key %q", v.Stream)
		}
		seen[v.Stream] = true
		if v.Assertion == "" || v.Severity <= 0 {
			t.Fatalf("malformed violation: %+v", v)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no stream keys in log")
	}
	// The dashboard total and the durable log must agree.
	m := regexp.MustCompile(`violations recorded: (\d+)`).FindSubmatch(out)
	if m == nil {
		t.Fatalf("summary line missing from output:\n%s", out)
	}
	total, _ := strconv.Atoi(string(m[1]))
	if total != len(vs) {
		t.Fatalf("summary reports %d violations, log holds %d", total, len(vs))
	}
}

func TestEndToEndUnwritableSinkPath(t *testing.T) {
	bin := needBinary(t)
	out, err := exec.Command(bin,
		"-frames", "50", "-log", filepath.Join(t.TempDir(), "no-such-dir", "v.jsonl"),
	).CombinedOutput()
	if err == nil {
		t.Fatalf("expected non-zero exit for unwritable sink path; output:\n%s", out)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("run error: %v", err)
	}
}

func TestEndToEndBadSinkFlags(t *testing.T) {
	bin := needBinary(t)
	logPath := filepath.Join(t.TempDir(), "v.jsonl")
	// Unknown backend, with and without -log, and a backend that needs a
	// log path but got none: all must fail loudly, never silently no-op.
	for _, args := range [][]string{
		{"-frames", "50", "-log", logPath, "-sink", "bogus"},
		{"-frames", "50", "-sink", "bogus"},
		{"-frames", "50", "-sink", "rotate"},
	} {
		if out, err := exec.Command(bin, args...).CombinedOutput(); err == nil {
			t.Fatalf("%v: expected non-zero exit; output:\n%s", args, out)
		}
	}
}

func TestEndToEndRotatingSink(t *testing.T) {
	bin := needBinary(t)
	logPath := filepath.Join(t.TempDir(), "violations.jsonl")
	out, err := exec.Command(bin,
		"-frames", "500", "-streams", "2", "-log", logPath,
		"-sink", "rotate", "-rotate-bytes", "2048", "-rotate-keep", "2",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("omg-monitor failed: %v\n%s", err, out)
	}
	if vs := readViolations(t, logPath); len(vs) == 0 {
		t.Fatal("active rotated log is empty")
	}
	if _, err := os.Stat(logPath + ".1"); err != nil {
		t.Fatalf("expected at least one rotation at 2 KiB: %v", err)
	}
	if _, err := os.Stat(logPath + ".3"); err == nil {
		t.Fatal("-rotate-keep 2 must prune the third rotated file")
	}
}

func TestEndToEndSamplingSinkAndPerStreamRecorders(t *testing.T) {
	bin := needBinary(t)
	logPath := filepath.Join(t.TempDir(), "violations.jsonl")
	out, err := exec.Command(bin,
		"-frames", "300", "-streams", "2", "-log", logPath,
		"-sink", "sample", "-sample-every", "5", "-per-stream-recorders",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("omg-monitor failed: %v\n%s", err, out)
	}
	m := regexp.MustCompile(`violations recorded: (\d+)`).FindSubmatch(out)
	if m == nil {
		t.Fatalf("summary line missing from output:\n%s", out)
	}
	total, _ := strconv.Atoi(string(m[1]))
	vs := readViolations(t, logPath)
	if len(vs) == 0 || len(vs) >= total {
		t.Fatalf("sampling should log fewer than the %d recorded violations, logged %d", total, len(vs))
	}
	if !regexp.MustCompile(`sink sampled out \d+ violations`).Match(out) {
		t.Fatalf("sampled-out count missing from summary:\n%s", out)
	}
}
