// Command omg-monitor demonstrates OMG's runtime-monitoring deployment
// (paper §2.3): it streams one or more simulated night-street deployments
// through a sharded MonitorPool holding the domain's three assertions,
// logs every violation through a pluggable sink backend, and prints a
// dashboard-style summary — the "populate dashboards" use the paper
// describes.
//
// With -streams N > 1 it drives N concurrent camera feeds (each with its
// own seed and stream key) through the pool's asynchronous ingestion path,
// exercising the multi-stream hot path. -sink selects the violation
// backend (plain JSONL, size-rotated files, or per-assertion sampling)
// and -per-stream-recorders gives each camera its own violation recorder.
//
// Usage:
//
//	omg-monitor [-frames N] [-seed S] [-log violations.jsonl]
//	            [-streams N] [-workers N]
//	            [-sink jsonl|rotate|sample] [-rotate-bytes N] [-rotate-keep N]
//	            [-sample-every N] [-per-stream-recorders]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"

	"omg/internal/assertion"
	"omg/internal/consistency"
	"omg/internal/domains/nightstreet"
)

func main() {
	frames := flag.Int("frames", 2000, "number of video frames to monitor per stream")
	seed := flag.Int64("seed", 1, "simulation seed (stream i uses seed+i)")
	logPath := flag.String("log", "", "JSONL violation log path (default: stdout summary only)")
	streams := flag.Int("streams", 1, "number of concurrent camera streams")
	workers := flag.Int("workers", 0, "max shards evaluating concurrently (0 = one per shard)")
	sinkKind := flag.String("sink", "jsonl", "violation sink backend with -log: jsonl, rotate or sample")
	rotateBytes := flag.Int64("rotate-bytes", 1<<20, "rotate the log after this many bytes (-sink=rotate)")
	rotateKeep := flag.Int("rotate-keep", 3, "rotated log files to keep (-sink=rotate)")
	sampleEvery := flag.Int("sample-every", 10, "keep 1 in N violations per assertion (-sink=sample)")
	perStream := flag.Bool("per-stream-recorders", false, "give each stream its own violation recorder")
	flag.Parse()
	if *streams < 1 {
		log.Fatalf("-streams must be >= 1")
	}
	switch *sinkKind {
	case "jsonl", "rotate", "sample":
	default:
		log.Fatalf("unknown -sink %q (want jsonl, rotate or sample)", *sinkKind)
	}
	if *logPath == "" && *sinkKind != "jsonl" {
		log.Fatalf("-sink=%s requires -log", *sinkKind)
	}
	if *rotateBytes <= 0 {
		log.Fatalf("-rotate-bytes must be > 0")
	}
	if *rotateKeep < 1 {
		log.Fatalf("-rotate-keep must be >= 1")
	}
	if *sampleEvery < 1 {
		log.Fatalf("-sample-every must be >= 1")
	}

	// A full disk or a bad path must not silently truncate the violation
	// log: every sink error path below exits non-zero.
	var sink assertion.Sink
	var sampler *assertion.SamplingSink
	var logFile *os.File
	if *logPath != "" {
		switch *sinkKind {
		case "jsonl", "sample":
			f, err := os.Create(*logPath)
			if err != nil {
				log.Fatalf("create log: %v", err)
			}
			logFile = f
			sink = assertion.NewJSONLSink(f, 0)
			if *sinkKind == "sample" {
				sampler = assertion.NewSamplingSink(sink, *sampleEvery)
				sink = sampler
			}
		case "rotate":
			s, err := assertion.NewRotatingFileSink(*logPath, *rotateBytes, *rotateKeep)
			if err != nil {
				log.Fatalf("open rotating log: %v", err)
			}
			sink = s
		}
	}

	// Every stream runs the same model and assertion suite; the suite's
	// assertions are pure functions of the sample window, so one suite
	// serves all shards.
	domains := make([]*nightstreet.Domain, *streams)
	for i := range domains {
		domains[i] = nightstreet.New(nightstreet.Config{
			Seed: *seed + int64(i), PoolFrames: *frames, TestFrames: 100,
		})
	}
	suite := domains[0].Suite()

	popts := []assertion.PoolOption{
		assertion.WithShards(*streams),
		assertion.WithPoolWindowSize(8),
	}
	if *perStream {
		popts = append(popts, assertion.WithPerStreamRecorders(10000))
	} else {
		popts = append(popts, assertion.WithPoolRecorder(assertion.NewRecorder(10000)))
	}
	if sink != nil {
		popts = append(popts, assertion.WithPoolSink(sink))
	}
	if *workers > 0 {
		popts = append(popts, assertion.WithPoolWorkers(*workers))
	}
	pool := assertion.NewMonitorPool(suite, popts...)

	// Corrective action: a real deployment might disengage an autopilot;
	// here we count high-severity events. Actions may run concurrently
	// across shards, hence the mutex.
	var highMu sync.Mutex
	highSeverity := 0
	pool.OnViolation(3, func(v assertion.Violation) {
		highMu.Lock()
		highSeverity++
		highMu.Unlock()
	})

	// Drive the deployments: each stream runs its model per frame and
	// enqueues every (input, output) into the pool — exactly OMG's
	// post-inference callback, but N cameras wide.
	var wg sync.WaitGroup
	for i, d := range domains {
		wg.Add(1)
		go func(i int, d *nightstreet.Domain) {
			defer wg.Done()
			key := fmt.Sprintf("cam-%02d", i)
			stream := d.DetectTracked(d.Pool())
			for _, s := range consistency.Samples(stream) {
				s.Stream = key
				if err := pool.Enqueue(s); err != nil {
					log.Printf("stream %s: %v", key, err)
					return
				}
			}
		}(i, d)
	}
	wg.Wait()
	// Close drains the pipeline, flushes every recorder and closes the
	// pool-owned sink; any sink error surfaces here.
	if err := pool.Close(); err != nil {
		log.Fatalf("drain monitor pool: %v", err)
	}

	fmt.Printf("monitored %d frames across %d streams (%d shards) with %d assertions\n",
		pool.Observed(), pool.NumStreams(), pool.NumShards(), suite.Len())
	fmt.Printf("violations recorded: %d (high severity: %d)\n", pool.TotalFired(), highSeverity)
	for _, name := range pool.AssertionNames() {
		st, _ := pool.Stats(name)
		fmt.Printf("  %-18s fired %5d times, max severity %.1f\n", name, st.Fired, st.MaxSev)
	}
	if sampler != nil && sampler.SampledOut() > 0 {
		fmt.Printf("sink sampled out %d violations (sampling policy)\n", sampler.SampledOut())
	}

	if logFile != nil {
		if err := logFile.Close(); err != nil {
			log.Fatalf("close log: %v", err)
		}
	}
	if sink != nil {
		fmt.Printf("JSONL violation log written to %s\n", *logPath)
	}
}
