// Command omg-monitor demonstrates OMG's runtime-monitoring deployment
// (paper §2.3): it streams one or more simulated night-street deployments
// through a sharded MonitorPool holding the domain's three assertions,
// logs every violation through a pluggable sink backend, and prints a
// dashboard-style summary — the "populate dashboards" use the paper
// describes.
//
// With -streams N > 1 it drives N concurrent camera feeds (each with its
// own seed and stream key) through the pool's asynchronous ingestion path,
// exercising the multi-stream hot path. -sink selects the violation
// backend (plain JSONL, size/time-rotated files, per-assertion sampling,
// or HTTP batch export to an omg-server collector) and
// -per-stream-recorders gives each camera its own violation recorder.
//
// With -sink=http, -log is optional and tees a local JSONL copy beside
// the export.
//
// -metrics-addr starts an edge-side Prometheus /metrics listener so the
// source fleet is scrapeable (observe latency, shard queue depth and
// wait, export delivery telemetry); -debug-addr serves net/http/pprof on
// a separate gated listener for live profiling.
//
// Usage:
//
//	omg-monitor [-frames N] [-seed S] [-log violations.jsonl]
//	            [-streams N] [-workers N]
//	            [-sink jsonl|rotate|sample|http]
//	            [-rotate-bytes N] [-rotate-keep N] [-rotate-interval D]
//	            [-sample-every N] [-per-stream-recorders]
//	            [-export-url http://collector:9077] [-export-batch N]
//	            [-export-retries N] [-wire json|binary] [-wire-compress]
//	            [-metrics-addr :9078] [-debug-addr :9079]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"

	"omg/internal/assertion"
	"omg/internal/consistency"
	"omg/internal/domains/nightstreet"
	"omg/internal/export"
	"omg/internal/obs"
)

func main() {
	frames := flag.Int("frames", 2000, "number of video frames to monitor per stream")
	seed := flag.Int64("seed", 1, "simulation seed (stream i uses seed+i)")
	logPath := flag.String("log", "", "JSONL violation log path (default: stdout summary only)")
	streams := flag.Int("streams", 1, "number of concurrent camera streams")
	workers := flag.Int("workers", 0, "max shards evaluating concurrently (0 = one per shard)")
	sinkKind := flag.String("sink", "jsonl", "violation sink backend: jsonl, rotate or sample (with -log), or http (with -export-url)")
	rotateBytes := flag.Int64("rotate-bytes", 1<<20, "rotate the log after this many bytes (-sink=rotate)")
	rotateKeep := flag.Int("rotate-keep", 3, "rotated log files to keep (-sink=rotate)")
	rotateInterval := flag.Duration("rotate-interval", 0, "also rotate the log after this long, whichever of size/age trips first (-sink=rotate; 0 = size only)")
	sampleEvery := flag.Int("sample-every", 10, "keep 1 in N violations per assertion (-sink=sample)")
	perStream := flag.Bool("per-stream-recorders", false, "give each stream its own violation recorder")
	exportURL := flag.String("export-url", "", "collector base URL, e.g. http://collector:9077 (-sink=http)")
	exportBatch := flag.Int("export-batch", 256, "violations coalesced per exported batch (-sink=http)")
	exportRetries := flag.Int("export-retries", 3, "retries per failed batch before its violations count as dropped (-sink=http)")
	wire := flag.String("wire", "json", "wire codec for exported batches: json or binary; falls back to json automatically when the collector refuses the codec (-sink=http)")
	wireCompress := flag.Bool("wire-compress", false, "DEFLATE-compress binary wire payloads (-sink=http -wire=binary)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics on this address (host:port; port 0 picks a free port)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (gated: off unless set)")
	flag.Parse()
	if *streams < 1 {
		log.Fatalf("-streams must be >= 1")
	}
	switch *sinkKind {
	case "jsonl", "rotate", "sample", "http":
	default:
		log.Fatalf("unknown -sink %q (want jsonl, rotate, sample or http)", *sinkKind)
	}
	if *logPath == "" && (*sinkKind == "rotate" || *sinkKind == "sample") {
		log.Fatalf("-sink=%s requires -log", *sinkKind)
	}
	if *sinkKind == "http" && *exportURL == "" {
		log.Fatalf("-sink=http requires -export-url")
	}
	if *rotateBytes <= 0 {
		log.Fatalf("-rotate-bytes must be > 0")
	}
	if *rotateKeep < 1 {
		log.Fatalf("-rotate-keep must be >= 1")
	}
	if *rotateInterval < 0 {
		log.Fatalf("-rotate-interval must be >= 0")
	}
	if *sampleEvery < 1 {
		log.Fatalf("-sample-every must be >= 1")
	}
	if *exportBatch < 1 {
		log.Fatalf("-export-batch must be >= 1")
	}
	if *exportRetries < 0 {
		log.Fatalf("-export-retries must be >= 0")
	}

	// A full disk, a bad path or an unreachable collector must not
	// silently truncate the violation stream: every sink error path below
	// exits non-zero.
	var sink assertion.Sink
	var sampler *assertion.SamplingSink
	var httpSink *export.HTTPSink
	var logFile *os.File
	switch {
	case *sinkKind == "http":
		// Built through the assertion sink registry (the seam third-party
		// backends use) rather than the export package's constructor.
		s, err := assertion.NewSinkFromFactory("http", map[string]string{
			"url":      *exportURL,
			"batch":    strconv.Itoa(*exportBatch),
			"retries":  strconv.Itoa(*exportRetries),
			"wire":     *wire,
			"compress": strconv.FormatBool(*wireCompress),
		})
		if err != nil {
			log.Fatalf("build http sink: %v", err)
		}
		httpSink = s.(*export.HTTPSink)
		sink = httpSink
		if *logPath != "" {
			// -log beside -sink=http: tee into a local JSONL file too.
			f, err := os.Create(*logPath)
			if err != nil {
				log.Fatalf("create log: %v", err)
			}
			logFile = f
			sink = assertion.NewMultiSink(httpSink, assertion.NewJSONLSink(f, 0))
		}
	case *logPath != "":
		switch *sinkKind {
		case "jsonl", "sample":
			f, err := os.Create(*logPath)
			if err != nil {
				log.Fatalf("create log: %v", err)
			}
			logFile = f
			sink = assertion.NewJSONLSink(f, 0)
			if *sinkKind == "sample" {
				sampler = assertion.NewSamplingSink(sink, *sampleEvery)
				sink = sampler
			}
		case "rotate":
			s, err := assertion.NewRotatingFileSinkConfig(*logPath, assertion.RotateConfig{
				MaxBytes: *rotateBytes, MaxAge: *rotateInterval, Keep: *rotateKeep,
			})
			if err != nil {
				log.Fatalf("open rotating log: %v", err)
			}
			sink = s
		}
	}

	// Every stream runs the same model and assertion suite; the suite's
	// assertions are pure functions of the sample window, so one suite
	// serves all shards.
	domains := make([]*nightstreet.Domain, *streams)
	for i := range domains {
		domains[i] = nightstreet.New(nightstreet.Config{
			Seed: *seed + int64(i), PoolFrames: *frames, TestFrames: 100,
		})
	}
	suite := domains[0].Suite()

	popts := []assertion.PoolOption{
		assertion.WithShards(*streams),
		assertion.WithPoolWindowSize(8),
	}
	if *perStream {
		popts = append(popts, assertion.WithPerStreamRecorders(10000))
	} else {
		popts = append(popts, assertion.WithPoolRecorder(assertion.NewRecorder(10000)))
	}
	if sink != nil {
		popts = append(popts, assertion.WithPoolSink(sink))
	}
	if *workers > 0 {
		popts = append(popts, assertion.WithPoolWorkers(*workers))
	}
	pool := assertion.NewMonitorPool(suite, popts...)

	// Edge telemetry: the pool's queue depth and (for -sink=http) the
	// exporter's delivery counters read live at scrape time, alongside the
	// stage histograms the instrumented packages registered at init.
	reg := obs.Default()
	reg.NewGaugeFunc("omg_pool_queue_depth",
		"Samples queued on shard queues or in flight with a pool worker.",
		func() float64 { return float64(pool.Pending()) })
	if httpSink != nil {
		reg.NewGaugeFunc("omg_export_queue_depth",
			"Violations buffered in the HTTP exporter, not yet shipped.",
			func() float64 { return float64(httpSink.Stats().Queued) })
		reg.NewCounterFunc("omg_export_delivered_total",
			"Violations acknowledged by the collector.",
			func() float64 { return float64(httpSink.Delivered()) })
		reg.NewCounterFunc("omg_export_retries_total",
			"Failed batch ship attempts that were retried.",
			func() float64 { return float64(httpSink.Retries()) })
		reg.NewCounterFunc("omg_export_dropped_total",
			"Violations dropped after exhausting batch retries.",
			func() float64 { return float64(httpSink.Dropped()) })
	}
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("listen metrics %s: %v", *metricsAddr, err)
		}
		// The resolved-address line is the handshake scripts and tests
		// scrape to learn the port when -metrics-addr ends in :0.
		fmt.Printf("omg-monitor metrics on http://%s/metrics\n", ln.Addr())
		go func() {
			srv := &http.Server{Handler: mux}
			if err := srv.Serve(ln); err != nil {
				log.Printf("metrics listener: %v", err)
			}
		}()
	}
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("listen debug %s: %v", *debugAddr, err)
		}
		fmt.Printf("omg-monitor debug on http://%s/debug/pprof/\n", ln.Addr())
		go func() {
			srv := &http.Server{Handler: obs.NewDebugMux()}
			if err := srv.Serve(ln); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	// Corrective action: a real deployment might disengage an autopilot;
	// here we count high-severity events. Actions may run concurrently
	// across shards, hence the mutex.
	var highMu sync.Mutex
	highSeverity := 0
	pool.OnViolation(3, func(v assertion.Violation) {
		highMu.Lock()
		highSeverity++
		highMu.Unlock()
	})

	// Drive the deployments: each stream runs its model per frame and
	// enqueues every (input, output) into the pool — exactly OMG's
	// post-inference callback, but N cameras wide.
	var wg sync.WaitGroup
	for i, d := range domains {
		wg.Add(1)
		go func(i int, d *nightstreet.Domain) {
			defer wg.Done()
			key := fmt.Sprintf("cam-%02d", i)
			stream := d.DetectTracked(d.Pool())
			for _, s := range consistency.Samples(stream) {
				s.Stream = key
				if err := pool.Enqueue(s); err != nil {
					log.Printf("stream %s: %v", key, err)
					return
				}
			}
		}(i, d)
	}
	wg.Wait()
	// Close drains the pipeline, flushes every recorder and closes the
	// pool-owned sink; any sink error surfaces here. When the sink counts
	// its losses (e.g. the HTTP exporter with the collector down), report
	// them — drops must never be silent.
	if err := pool.Close(); err != nil {
		if dc, ok := sink.(assertion.DropCounter); ok && dc.Dropped() > 0 {
			log.Fatalf("drain monitor pool: %v (sink dropped %d of %d violations)",
				err, dc.Dropped(), pool.TotalFired())
		}
		log.Fatalf("drain monitor pool: %v", err)
	}

	fmt.Printf("monitored %d frames across %d streams (%d shards) with %d assertions\n",
		pool.Observed(), pool.NumStreams(), pool.NumShards(), suite.Len())
	fmt.Printf("violations recorded: %d (high severity: %d)\n", pool.TotalFired(), highSeverity)
	for _, name := range pool.AssertionNames() {
		st, _ := pool.Stats(name)
		fmt.Printf("  %-18s fired %5d times, max severity %.1f\n", name, st.Fired, st.MaxSev)
	}
	if sampler != nil && sampler.SampledOut() > 0 {
		fmt.Printf("sink sampled out %d violations (sampling policy)\n", sampler.SampledOut())
	}

	if logFile != nil {
		if err := logFile.Close(); err != nil {
			log.Fatalf("close log: %v", err)
		}
	}
	if httpSink != nil {
		st := httpSink.Stats()
		fmt.Printf("exported %d violations in %d batches to %s (%d retries, %d dropped, %d queued)\n",
			st.Delivered, st.Batches, *exportURL, st.Retries, st.Dropped, st.Queued)
		if st.WireFellBack {
			fmt.Printf("wire codec fell back to json (collector does not accept %s)\n", *wire)
		} else if st.Wire != "json" {
			fmt.Printf("wire codec: %s (compress=%v)\n", st.Wire, *wireCompress)
		}
	}
	if sink != nil && *logPath != "" {
		fmt.Printf("JSONL violation log written to %s\n", *logPath)
	}
}
