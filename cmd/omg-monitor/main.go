// Command omg-monitor demonstrates OMG's runtime-monitoring deployment
// (paper §2.3): it streams a simulated night-street deployment through a
// Monitor holding the domain's three assertions, logs every violation as
// JSONL, and prints a dashboard-style summary — the "populate dashboards"
// use the paper describes.
//
// Usage:
//
//	omg-monitor [-frames N] [-seed S] [-log violations.jsonl]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"omg/internal/assertion"
	"omg/internal/consistency"
	"omg/internal/domains/nightstreet"
)

func main() {
	frames := flag.Int("frames", 2000, "number of video frames to monitor")
	seed := flag.Int64("seed", 1, "simulation seed")
	logPath := flag.String("log", "", "JSONL violation log path (default: stdout summary only)")
	flag.Parse()

	domain := nightstreet.New(nightstreet.Config{Seed: *seed, PoolFrames: *frames, TestFrames: 100})

	rec := assertion.NewRecorder(10000)
	if *logPath != "" {
		f, err := os.Create(*logPath)
		if err != nil {
			log.Fatalf("create log: %v", err)
		}
		defer f.Close()
		rec.StreamTo(f)
	}
	mon := assertion.NewMonitor(domain.Suite(), assertion.WithWindowSize(8), assertion.WithRecorder(rec))

	// Corrective action: a real deployment might disengage an autopilot;
	// here we count high-severity events.
	highSeverity := 0
	mon.OnViolation(3, func(v assertion.Violation) { highSeverity++ })

	// Stream the deployment: run the model per frame and hand each
	// (input, output) to the monitor, exactly OMG's post-inference
	// callback.
	stream := domain.DetectTracked(domain.Pool())
	for _, s := range consistency.Samples(stream) {
		mon.Observe(s)
	}

	fmt.Printf("monitored %d frames with %d assertions\n", mon.Observed(), domain.Suite().Len())
	fmt.Printf("violations recorded: %d (high severity: %d)\n", rec.TotalFired(), highSeverity)
	for _, name := range rec.AssertionNames() {
		st, _ := rec.Stats(name)
		fmt.Printf("  %-18s fired %5d times, max severity %.1f\n", name, st.Fired, st.MaxSev)
	}
	if *logPath != "" {
		if err := rec.Err(); err != nil {
			log.Fatalf("log stream error: %v", err)
		}
		fmt.Printf("JSONL violation log written to %s\n", *logPath)
	}
}
