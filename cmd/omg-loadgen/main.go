// Command omg-loadgen is the chaos harness for the collector's overload
// protection (ROADMAP item 5): it replays the six seed domains as
// hundreds of concurrent synthetic streams through real export.HTTPSink
// pipelines against a live omg-server it spawns and supervises, while a
// seeded, deterministic fault schedule attacks every layer — 429 storms,
// 5xx bursts and timeouts injected by a fault proxy between the sinks
// and the collector, SIGSTOP/SIGCONT freezes, SIGKILL + restart crashes,
// and ENOSPC disk-full injection (the collector's -chaos-disk-full-after
// flag) healed by restart.
//
// At exit it asserts the global conservation invariant over everything
// the streams observed:
//
//   - edge books balance: for every sink, recorded == delivered + dropped
//     (no violation leaves the edge unaccounted);
//   - nothing is silently lost: the healed collector holds at least every
//     delivered (acknowledged) violation;
//   - nothing is manufactured: the collector holds at most
//     delivered + dropped (anything beyond delivered is a batch whose
//     apply survived a crash but whose acknowledgement was lost — the
//     edge counted it dropped, so it is still accounted, just
//     conservatively twice, and reported as ack_lost_applied);
//   - nothing is duplicated: every retained (stream, sample, assertion)
//     triple is unique and the retained count equals the aggregate total;
//   - recovery is exact: /v1/summary and the full retained violation set
//     are byte-identical across a final SIGKILL + restart.
//
// Any failed check makes the run exit non-zero; -report writes the full
// JSON accounting either way.
//
// Usage:
//
//	omg-loadgen -server-bin ./bin/omg-server [-duration 30s] [-seed 1]
//	            [-streams 200] [-sinks 20] [-rate 20] [-data-dir DIR]
//	            [-report chaos_report.json] [-shards 4]
//	            [-collector-rate-limit N] [-collector-burst N]
//	            [-collector-max-inflight N] [-chaos none|all]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"omg/internal/assertion"
	"omg/internal/domains/avscenes"
	"omg/internal/domains/heartbeat"
	"omg/internal/domains/newsroom"
	"omg/internal/domains/nightstreet"
	"omg/internal/export"
	"omg/internal/simrand"
)

// domainProfile shapes one seed domain's synthetic replay: its assertion
// vocabulary (taken from the real domain packages where they export
// names) and a severity range matching the domain's score scale.
type domainProfile struct {
	name       string
	assertions []string
	sevLo      float64
	sevHi      float64
}

func domainProfiles() []domainProfile {
	news := make([]string, 0, len(newsroom.AttrKeys))
	for _, attr := range newsroom.AttrKeys {
		news = append(news, "news:flicker:"+attr)
	}
	return []domainProfile{
		{"nightstreet", nightstreet.AssertionNames, 0.3, 3},
		{"avscenes", avscenes.AssertionNames, 0.3, 3},
		{"heartbeat", []string{heartbeat.AssertionName}, 1, 2},
		{"newsroom", news, 0.5, 2},
		{"lidar", []string{"lidar:agree", "lidar:multibox"}, 0.3, 3},
		{"video", []string{"video:flicker", "video:appear"}, 0.3, 3},
	}
}

// phase is one step of the fault schedule.
type phase struct {
	Name  string        `json:"name"`
	Start float64       `json:"start_s"` // seconds into the run
	Dur   time.Duration `json:"-"`
	DurS  float64       `json:"dur_s"`
}

// buildSchedule carves the run into warmup → shuffled fault phases →
// drain. The shuffle (and everything else random in the run) derives
// from the single seed, so a schedule replays exactly.
func buildSchedule(seed int64, total time.Duration, chaos bool) []phase {
	warmup := time.Duration(float64(total) * 0.1)
	drain := time.Duration(float64(total) * 0.2)
	if !chaos {
		return []phase{{Name: "healthy", Dur: total - drain}, {Name: "drain", Dur: drain}}
	}
	faults := []string{"storm429", "errors500", "timeouts", "sigstop", "sigkill", "diskfull"}
	rng := simrand.NewStream(seed, "loadgen-schedule")
	rng.Shuffle(len(faults), func(i, j int) { faults[i], faults[j] = faults[j], faults[i] })
	middle := total - warmup - drain
	per := middle / time.Duration(len(faults))
	ps := []phase{{Name: "warmup", Dur: warmup}}
	for _, f := range faults {
		ps = append(ps, phase{Name: f, Dur: per})
	}
	ps = append(ps, phase{Name: "drain", Dur: drain})
	at := time.Duration(0)
	for i := range ps {
		ps[i].Start = at.Seconds()
		ps[i].DurS = ps[i].Dur.Seconds()
		at += ps[i].Dur
	}
	return ps
}

// sinkReport is one sink's final books in the JSON report.
type sinkReport struct {
	Source         string `json:"source"`
	Wire           string `json:"wire"`
	Recorded       int64  `json:"recorded"`
	Delivered      int64  `json:"delivered"`
	Dropped        int64  `json:"dropped"`
	Retries        int64  `json:"retries"`
	BreakerDropped int64  `json:"breaker_dropped"`
	Probes         int64  `json:"probes"`
}

// report is the run's full accounting, written to -report.
type report struct {
	Seed     int64   `json:"seed"`
	Duration float64 `json:"duration_s"`
	Streams  int     `json:"streams"`
	Sinks    int     `json:"sinks"`
	Schedule []phase `json:"schedule"`

	Recorded  int64 `json:"recorded"`
	Delivered int64 `json:"delivered"`
	Dropped   int64 `json:"dropped"`
	Retries   int64 `json:"retries"`

	CollectorTotal    int   `json:"collector_total_fired"`
	CollectorRetained int   `json:"collector_retained"`
	UniqueTriples     int   `json:"unique_triples"`
	AckLostApplied    int64 `json:"ack_lost_applied"`
	DuplicateBatches  int64 `json:"duplicate_batches"`
	RejectedBatches   int64 `json:"rejected_batches"`

	Injected429  int64 `json:"injected_429"`
	Injected500  int64 `json:"injected_500"`
	InjectedHang int64 `json:"injected_timeouts"`

	RecoveryIdentical bool         `json:"recovery_identical"`
	SinkStats         []sinkReport `json:"sink_stats"`
	Violations        []string     `json:"invariant_violations"`
	OK                bool         `json:"ok"`
}

func main() {
	serverBin := flag.String("server-bin", "omg-server", "path to the omg-server binary to spawn and attack")
	duration := flag.Duration("duration", 30*time.Second, "total run length including warmup and drain")
	seed := flag.Int64("seed", 1, "master seed: schedule, stream contents and pacing all derive from it")
	streams := flag.Int("streams", 200, "concurrent synthetic violation streams (spread across the six seed domains)")
	sinkN := flag.Int("sinks", 20, "HTTPSink pipelines the streams multiplex over (each one wire source)")
	rate := flag.Float64("rate", 20, "violations per second per stream (before fault backpressure)")
	dataDir := flag.String("data-dir", "", "collector data directory (default: a temp dir, removed on success)")
	reportPath := flag.String("report", "", "write the JSON accounting report here")
	shards := flag.Int("shards", 4, "collector ingest shards")
	rateLimit := flag.Int64("collector-rate-limit", 128<<10, "collector per-source -rate-limit bytes/s (0 = off)")
	burst := flag.Int64("collector-burst", 256<<10, "collector -burst bytes (0 = one second's worth)")
	maxInflight := flag.Int("collector-max-inflight", 64, "collector -max-inflight (0 = unbounded)")
	chaos := flag.String("chaos", "all", "fault schedule: all (the full seeded schedule) or none (pure load)")
	flag.Parse()
	if *streams < 1 || *sinkN < 1 || *streams < *sinkN {
		log.Fatalf("need -streams >= -sinks >= 1")
	}
	if *chaos != "all" && *chaos != "none" {
		log.Fatalf("-chaos must be all or none")
	}

	dir := *dataDir
	keepData := dir != ""
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "omg-loadgen"); err != nil {
			log.Fatal(err)
		}
	}

	proc := &collectorProc{
		bin: *serverBin, dataDir: dir, shards: *shards,
		rateLimit: *rateLimit, burst: *burst, maxInflight: *maxInflight,
	}
	if err := proc.start(); err != nil {
		log.Fatalf("start collector: %v", err)
	}
	defer proc.terminate()

	// Ctrl-C must not orphan the child collector.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigCh
		proc.kill()
		os.Exit(130)
	}()

	proxy, err := newFaultProxy(proc.baseURL())
	if err != nil {
		proc.kill()
		log.Fatalf("start fault proxy: %v", err)
	}

	// The sink fleet: each sink is one wire source; streams multiplex
	// over them round-robin. Half speak JSON, half binary, and all run
	// the full resilience stack (Retry-After honor is implicit, retry
	// budget, circuit breaker).
	sinks := make([]*export.HTTPSink, *sinkN)
	for i := range sinks {
		wire := export.CodecJSON
		if i%2 == 1 {
			wire = export.CodecBinary
		}
		s, err := export.NewHTTPSink(export.HTTPSinkConfig{
			BaseURL:         proxy.url(),
			Source:          fmt.Sprintf("loadgen-%02d", i),
			Wire:            wire,
			BatchMax:        64,
			MaxRetries:      4,
			BaseBackoff:     50 * time.Millisecond,
			MaxBackoff:      time.Second,
			Timeout:         2 * time.Second,
			RetryBudget:     6 * time.Second,
			BreakerFailures: 6,
			BreakerProbe:    time.Second,
		})
		if err != nil {
			proc.kill()
			log.Fatalf("sink %d: %v", i, err)
		}
		sinks[i] = s
	}

	// The stream fleet.
	profiles := domainProfiles()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var recorded atomic.Int64
	for i := 0; i < *streams; i++ {
		prof := profiles[i%len(profiles)]
		sink := sinks[i%len(sinks)]
		key := fmt.Sprintf("lg-%s-%03d", prof.name, i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := simrand.NewStream(*seed, "loadgen-"+key)
			interval := time.Duration(float64(time.Second) / *rate)
			for sample := 1; ; sample++ {
				v := assertion.Violation{
					Assertion:   prof.assertions[rng.Choice(len(prof.assertions))],
					Stream:      key,
					SampleIndex: sample,
					Time:        float64(sample) / 30,
					Severity:    rng.Uniform(prof.sevLo, prof.sevHi),
				}
				// Record blocks when the queue is full — backpressure
				// during faults slows the stream instead of losing data
				// unaccounted.
				if err := sink.Record(v); err != nil {
					return
				}
				recorded.Add(1)
				wait := time.Duration(rng.Uniform(0.5, 1.5) * float64(interval))
				select {
				case <-stop:
					return
				case <-time.After(wait):
				}
			}
		}()
	}

	// Run the seeded fault schedule.
	schedule := buildSchedule(*seed, *duration, *chaos == "all")
	began := time.Now()
	for _, ph := range schedule {
		log.Printf("phase %-9s for %s (t+%.1fs)", ph.Name, ph.Dur.Round(time.Millisecond), time.Since(began).Seconds())
		runPhase(ph, proc, proxy)
	}

	// Heal everything, stop the streams, drain the sinks.
	proxy.setMode(modePass)
	if err := proc.waitHealthy(10 * time.Second); err != nil {
		log.Printf("warning: %v", err)
	}
	close(stop)
	wg.Wait()
	var sinkWG sync.WaitGroup
	for _, s := range sinks {
		sinkWG.Add(1)
		go func(s *export.HTTPSink) { defer sinkWG.Done(); s.Close() }(s)
	}
	sinkWG.Wait()

	rep := &report{
		Seed: *seed, Duration: time.Since(began).Seconds(),
		Streams: *streams, Sinks: *sinkN, Schedule: schedule,
		Recorded:     recorded.Load(),
		Injected429:  proxy.injected429.Load(),
		Injected500:  proxy.injected500.Load(),
		InjectedHang: proxy.injectedHang.Load(),
	}
	for _, s := range sinks {
		st := s.Stats()
		rep.Delivered += st.Delivered
		rep.Dropped += st.Dropped
		rep.Retries += st.Retries
		rep.SinkStats = append(rep.SinkStats, sinkReport{
			Source: s.Source(), Wire: st.Wire,
			Recorded:       st.Delivered + st.Dropped, // see edge-books check below
			Delivered:      st.Delivered,
			Dropped:        st.Dropped,
			Retries:        st.Retries,
			BreakerDropped: st.BreakerDropped,
			Probes:         st.Probes,
		})
	}

	checkConservation(rep, proc)
	checkRecovery(rep, proc, proxy)

	proc.terminate()
	rep.OK = len(rep.Violations) == 0
	if *reportPath != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*reportPath, append(data, '\n'), 0o644); err != nil {
			log.Printf("write report: %v", err)
		}
	}
	fmt.Printf("omg-loadgen: recorded=%d delivered=%d dropped=%d retries=%d collector=%d ack_lost=%d faults={429:%d,500:%d,timeout:%d}\n",
		rep.Recorded, rep.Delivered, rep.Dropped, rep.Retries,
		rep.CollectorTotal, rep.AckLostApplied,
		rep.Injected429, rep.Injected500, rep.InjectedHang)
	if !rep.OK {
		for _, v := range rep.Violations {
			fmt.Printf("INVARIANT VIOLATION: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("conservation invariant holds: every violation accepted-once or counted-dropped; recovery byte-identical")
	if !keepData {
		os.RemoveAll(dir)
	}
}

// runPhase executes one schedule step against the proxy and the
// collector process.
func runPhase(ph phase, proc *collectorProc, proxy *faultProxy) {
	sleep := func(d time.Duration) { time.Sleep(d) }
	switch ph.Name {
	case "warmup", "healthy", "drain":
		proxy.setMode(modePass)
		sleep(ph.Dur)
	case "storm429":
		proxy.setMode(modeReject429)
		sleep(ph.Dur)
		proxy.setMode(modePass)
	case "errors500":
		proxy.setMode(modeReject500)
		sleep(ph.Dur)
		proxy.setMode(modePass)
	case "timeouts":
		proxy.setMode(modeTimeout)
		sleep(ph.Dur)
		proxy.setMode(modePass)
	case "sigstop":
		// Freeze the collector: connections accept (kernel backlog) but
		// nothing answers, so the sinks see timeouts, then recovery.
		proc.signal(syscall.SIGSTOP)
		sleep(time.Duration(float64(ph.Dur) * 0.6))
		proc.signal(syscall.SIGCONT)
		sleep(time.Duration(float64(ph.Dur) * 0.4))
	case "sigkill":
		proc.kill()
		sleep(time.Duration(float64(ph.Dur) * 0.4))
		if err := proc.start(); err != nil {
			log.Fatalf("restart after sigkill: %v", err)
		}
		proxy.setBackend(proc.baseURL())
		proc.waitHealthy(10 * time.Second)
		sleep(time.Duration(float64(ph.Dur) * 0.6))
	case "diskfull":
		// Restart with the write budget nearly spent: the store faults
		// with injected ENOSPC almost immediately, the collector latches
		// degraded (503s, /healthz red), then a clean restart heals it.
		proc.kill()
		if err := proc.start("-chaos-disk-full-after", "4096"); err != nil {
			log.Fatalf("restart with disk fault: %v", err)
		}
		proxy.setBackend(proc.baseURL())
		sleep(time.Duration(float64(ph.Dur) * 0.6))
		proc.kill()
		if err := proc.start(); err != nil {
			log.Fatalf("restart after disk fault: %v", err)
		}
		proxy.setBackend(proc.baseURL())
		proc.waitHealthy(10 * time.Second)
		sleep(time.Duration(float64(ph.Dur) * 0.4))
	default:
		log.Fatalf("unknown phase %q", ph.Name)
	}
}

// fetchJSON GETs url and decodes the body into out.
func fetchJSON(url string, out any) error {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// checkConservation settles the global books against the healed
// collector and records any invariant violation on the report.
func checkConservation(rep *report, proc *collectorProc) {
	fail := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}
	// Edge books: the sinks' own contract, summed over the fleet.
	if rep.Recorded != rep.Delivered+rep.Dropped {
		fail("edge books unbalanced: recorded %d != delivered %d + dropped %d",
			rep.Recorded, rep.Delivered, rep.Dropped)
	}

	var sum export.SummaryResponse
	if err := fetchJSON(proc.baseURL()+"/v1/summary", &sum); err != nil {
		fail("fetch summary: %v", err)
		return
	}
	rep.CollectorTotal = sum.TotalFired
	rep.DuplicateBatches = sum.DuplicateBatches
	rep.RejectedBatches = sum.Rejected
	rep.AckLostApplied = int64(sum.TotalFired) - rep.Delivered

	// Nothing silently lost: everything acknowledged is present.
	if int64(sum.TotalFired) < rep.Delivered {
		fail("silent loss: collector holds %d < %d acknowledged", sum.TotalFired, rep.Delivered)
	}
	// Nothing manufactured: anything beyond the acknowledged set must be
	// covered by an edge-counted drop (an apply that survived a crash
	// whose acknowledgement did not).
	if int64(sum.TotalFired) > rep.Delivered+rep.Dropped {
		fail("over-count: collector holds %d > delivered %d + dropped %d",
			sum.TotalFired, rep.Delivered, rep.Dropped)
	}

	// Nothing duplicated: the retained set's (stream, sample, assertion)
	// triples are unique and account for the aggregate total exactly.
	var q export.QueryResponse
	if err := fetchJSON(proc.baseURL()+"/v1/violations/query?limit=0", &q); err != nil {
		fail("fetch query: %v", err)
		return
	}
	rep.CollectorRetained = q.Count
	triples := make(map[string]struct{}, q.Count)
	for _, v := range q.Violations {
		triples[fmt.Sprintf("%s|%d|%s", v.Stream, v.SampleIndex, v.Assertion)] = struct{}{}
	}
	rep.UniqueTriples = len(triples)
	if len(triples) != q.Count {
		fail("duplicated violations: %d retained but only %d unique triples", q.Count, len(triples))
	}
	if q.Count != sum.TotalFired {
		fail("retained %d != total fired %d (retention is unbounded: these must match)", q.Count, sum.TotalFired)
	}
}

// checkRecovery SIGKILLs the settled collector and verifies the restart
// reproduces its observable state byte-for-byte: the summary document
// and an order-independent hash of the full retained violation set.
func checkRecovery(rep *report, proc *collectorProc, proxy *faultProxy) {
	fail := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}
	fetch := func() (string, uint64, error) {
		client := &http.Client{Timeout: 30 * time.Second}
		resp, err := client.Get(proc.baseURL() + "/v1/summary")
		if err != nil {
			return "", 0, err
		}
		summary, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", 0, err
		}
		var q export.QueryResponse
		if err := fetchJSON(proc.baseURL()+"/v1/violations/query?limit=0", &q); err != nil {
			return "", 0, err
		}
		lines := make([]string, 0, len(q.Violations))
		for _, v := range q.Violations {
			lines = append(lines, fmt.Sprintf("%s|%d|%s|%g|%g|%d",
				v.Stream, v.SampleIndex, v.Assertion, v.Time, v.Severity, v.IngestUnix))
		}
		sort.Strings(lines)
		h := fnv.New64a()
		for _, l := range lines {
			io.WriteString(h, l)
			h.Write([]byte{'\n'})
		}
		return string(summary), h.Sum64(), nil
	}

	before, hashBefore, err := fetch()
	if err != nil {
		fail("recovery pre-state: %v", err)
		return
	}
	proc.kill()
	if err := proc.start(); err != nil {
		fail("recovery restart: %v", err)
		return
	}
	proxy.setBackend(proc.baseURL())
	if err := proc.waitHealthy(10 * time.Second); err != nil {
		fail("recovery health: %v", err)
		return
	}
	after, hashAfter, err := fetch()
	if err != nil {
		fail("recovery post-state: %v", err)
		return
	}
	rep.RecoveryIdentical = before == after && hashBefore == hashAfter
	if before != after {
		fail("recovery summary differs:\n before: %s\n after:  %s", before, after)
	}
	if hashBefore != hashAfter {
		fail("recovery violation set differs: hash %x -> %x", hashBefore, hashAfter)
	}
}
