package main

import (
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"time"
)

// Fault-proxy modes. The sinks talk to the proxy; the proxy either
// forwards to the live collector or plays one of the collector's failure
// personas, so 429 storms, 5xx bursts and timeouts can be injected
// without touching the real process.
const (
	modePass      = "pass"
	modeReject429 = "reject429"
	modeReject500 = "reject500"
	modeTimeout   = "timeout"
)

// faultProxy is a reverse proxy in front of the collector whose backend
// address survives collector restarts (it is re-pointed at the new port)
// and whose mode switches per fault phase.
type faultProxy struct {
	ln      net.Listener
	backend atomic.Value // string: collector base URL
	mode    atomic.Value // string: one of the mode constants

	injected429  atomic.Int64
	injected500  atomic.Int64
	injectedHang atomic.Int64

	rp *httputil.ReverseProxy
}

func newFaultProxy(backendURL string) (*faultProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &faultProxy{ln: ln}
	p.backend.Store(backendURL)
	p.mode.Store(modePass)
	p.rp = &httputil.ReverseProxy{
		Director: func(req *http.Request) {
			if u, err := url.Parse(p.backend.Load().(string)); err == nil {
				req.URL.Scheme = u.Scheme
				req.URL.Host = u.Host
			}
		},
		// A dead backend (killed collector) answers 502: a transient
		// failure the sinks retry, exactly like a connection error.
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			http.Error(w, "proxy: "+err.Error(), http.StatusBadGateway)
		},
		ErrorLog: nil,
	}
	srv := &http.Server{Handler: http.HandlerFunc(p.serve), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	return p, nil
}

func (p *faultProxy) url() string         { return "http://" + p.ln.Addr().String() }
func (p *faultProxy) setBackend(u string) { p.backend.Store(u) }
func (p *faultProxy) setMode(mode string) { p.mode.Store(mode) }
func (p *faultProxy) currentMode() string { return p.mode.Load().(string) }

func (p *faultProxy) serve(w http.ResponseWriter, r *http.Request) {
	switch p.mode.Load().(string) {
	case modeReject429:
		p.injected429.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "injected throttle", http.StatusTooManyRequests)
	case modeReject500:
		p.injected500.Add(1)
		http.Error(w, "injected server error", http.StatusInternalServerError)
	case modeTimeout:
		// Hold the request past the sinks' client timeout, then fail it:
		// the sender sees a timeout, never a response.
		p.injectedHang.Add(1)
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
		http.Error(w, "injected timeout", http.StatusGatewayTimeout)
	default:
		p.rp.ServeHTTP(w, r)
	}
}
