package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// collectorProc supervises one omg-server child: spawn, handshake (the
// first stdout line names the bound port), signal, kill, restart. The
// same data directory rides across every restart — recovery is the
// thing under test.
type collectorProc struct {
	bin         string
	dataDir     string
	shards      int
	rateLimit   int64
	burst       int64
	maxInflight int

	mu  sync.Mutex
	cmd *exec.Cmd
	url string
}

// start spawns the collector (plus any extra flags, e.g. the disk-fault
// injection) and blocks until the startup handshake names the port.
func (p *collectorProc) start(extra ...string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-store", "disk",
		"-data-dir", p.dataDir,
		"-shards", strconv.Itoa(p.shards),
		"-retain", "0", // retention evictions would blur the conservation books
	}
	if p.rateLimit > 0 {
		args = append(args, "-rate-limit", strconv.FormatInt(p.rateLimit, 10))
		if p.burst > 0 {
			args = append(args, "-burst", strconv.FormatInt(p.burst, 10))
		}
	}
	if p.maxInflight > 0 {
		args = append(args, "-max-inflight", strconv.Itoa(p.maxInflight))
	}
	args = append(args, extra...)
	cmd := exec.Command(p.bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	sc := bufio.NewScanner(stdout)
	addr := ""
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "omg-server listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("omg-server printed no listening line")
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	p.cmd = cmd
	p.url = "http://" + addr
	return nil
}

func (p *collectorProc) baseURL() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.url
}

func (p *collectorProc) signal(sig syscall.Signal) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd == nil || p.cmd.Process == nil {
		return fmt.Errorf("collector not running")
	}
	return p.cmd.Process.Signal(sig)
}

// kill SIGKILLs the collector and reaps it — the crash under test.
func (p *collectorProc) kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd == nil {
		return
	}
	p.cmd.Process.Kill()
	p.cmd.Wait()
	p.cmd = nil
}

// terminate asks for a graceful exit (SIGTERM) and reaps, falling back
// to SIGKILL after a grace period.
func (p *collectorProc) terminate() {
	p.mu.Lock()
	cmd := p.cmd
	p.cmd = nil
	p.mu.Unlock()
	if cmd == nil {
		return
	}
	cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		<-done
	}
}

// waitHealthy polls /healthz until the collector answers 200.
func (p *collectorProc) waitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	url := p.baseURL() + "/healthz"
	client := &http.Client{Timeout: time.Second}
	for {
		resp, err := client.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("collector not healthy after %s", timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
