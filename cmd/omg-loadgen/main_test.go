package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// loadgenBin and serverBin are built once by TestMain; empty when the go
// toolchain is unavailable (tests skip then).
var loadgenBin, serverBin string

func TestMain(m *testing.M) {
	var cleanup string
	if _, err := exec.LookPath("go"); err == nil {
		dir, err := os.MkdirTemp("", "omg-loadgen-e2e")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cleanup = dir
		for _, b := range []struct {
			bin  *string
			name string
			pkg  string
		}{
			{&loadgenBin, "omg-loadgen", "."},
			{&serverBin, "omg-server", "omg/cmd/omg-server"},
		} {
			path := filepath.Join(dir, b.name)
			if out, err := exec.Command("go", "build", "-o", path, b.pkg).CombinedOutput(); err != nil {
				os.RemoveAll(dir)
				fmt.Fprintf(os.Stderr, "building %s: %v\n%s", b.pkg, err, out)
				os.Exit(1)
			}
			*b.bin = path
		}
	}
	code := m.Run()
	if cleanup != "" {
		os.RemoveAll(cleanup)
	}
	os.Exit(code)
}

func needBinaries(t *testing.T) {
	t.Helper()
	if loadgenBin == "" || serverBin == "" {
		t.Skip("go toolchain unavailable; cannot build binaries")
	}
}

// runLoadgen executes a full chaos run and returns the parsed report.
func runLoadgen(t *testing.T, extra ...string) report {
	t.Helper()
	reportPath := filepath.Join(t.TempDir(), "report.json")
	args := append([]string{
		"-server-bin", serverBin,
		"-report", reportPath,
	}, extra...)
	cmd := exec.Command(loadgenBin, args...)
	out, err := cmd.CombinedOutput()
	t.Logf("omg-loadgen output:\n%s", out)
	if err != nil {
		t.Fatalf("omg-loadgen failed: %v", err)
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("parse report: %v", err)
	}
	return rep
}

// TestChaosRunConservation drives the full seeded fault schedule — 429
// storm, 500 burst, timeouts, SIGSTOP freeze, SIGKILL crash, disk-full
// degradation — for a short run and requires the conservation invariant
// to hold: every recorded violation is exactly one of accepted-once or
// counted-dropped, and recovery reproduces the collector's state
// byte-identically.
func TestChaosRunConservation(t *testing.T) {
	needBinaries(t)
	if testing.Short() {
		t.Skip("chaos run takes ~15s; skipped in -short")
	}
	rep := runLoadgen(t,
		"-duration", "12s",
		"-seed", "42",
		"-streams", "48",
		"-sinks", "6",
		"-rate", "12",
	)
	if !rep.OK {
		t.Fatalf("invariant violations: %v", rep.Violations)
	}
	if rep.Recorded == 0 || rep.Delivered == 0 {
		t.Fatalf("no load generated: recorded=%d delivered=%d", rep.Recorded, rep.Delivered)
	}
	if rep.Recorded != rep.Delivered+rep.Dropped {
		t.Fatalf("edge books: recorded %d != delivered %d + dropped %d",
			rep.Recorded, rep.Delivered, rep.Dropped)
	}
	if !rep.RecoveryIdentical {
		t.Fatal("recovery state not byte-identical")
	}
	if rep.UniqueTriples != rep.CollectorRetained {
		t.Fatalf("duplicates retained: %d unique of %d", rep.UniqueTriples, rep.CollectorRetained)
	}
	// Every fault class in the schedule must actually have fired at least
	// one proxy-injected fault or collector restart; the schedule itself
	// is recorded so a quiet run is diagnosable.
	if rep.Injected429 == 0 && rep.Injected500 == 0 && rep.InjectedHang == 0 {
		t.Fatalf("no faults injected; schedule %v", rep.Schedule)
	}
	if len(rep.Schedule) != 8 { // warmup + 6 faults + drain
		t.Fatalf("schedule has %d phases, want 8: %v", len(rep.Schedule), rep.Schedule)
	}
}

// TestChaosScheduleDeterministic re-derives the schedule for the same
// seed twice and for a different seed once: identical and (very likely)
// different orderings respectively.
func TestChaosScheduleDeterministic(t *testing.T) {
	a := buildSchedule(7, 30*time.Second, true)
	b := buildSchedule(7, 30*time.Second, true)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Start != b[i].Start {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// At least one of a handful of other seeds must shuffle differently.
	diff := false
	for seed := int64(8); seed < 16 && !diff; seed++ {
		c := buildSchedule(seed, 30*time.Second, true)
		for i := range a {
			if a[i].Name != c[i].Name {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("eight different seeds produced the identical schedule")
	}
}

// TestHealthyRunNoFaults runs -chaos none: pure load, no injected
// faults, everything delivered, nothing dropped.
func TestHealthyRunNoFaults(t *testing.T) {
	needBinaries(t)
	if testing.Short() {
		t.Skip("e2e run; skipped in -short")
	}
	rep := runLoadgen(t,
		"-duration", "4s",
		"-seed", "3",
		"-streams", "12",
		"-sinks", "3",
		"-rate", "10",
		"-chaos", "none",
	)
	if !rep.OK {
		t.Fatalf("invariant violations: %v", rep.Violations)
	}
	if rep.Dropped != 0 {
		t.Fatalf("healthy run dropped %d violations", rep.Dropped)
	}
	if rep.Injected429+rep.Injected500+rep.InjectedHang != 0 {
		t.Fatalf("healthy run injected faults: %d/%d/%d",
			rep.Injected429, rep.Injected500, rep.InjectedHang)
	}
	if rep.CollectorTotal != int(rep.Delivered) || rep.Recorded != rep.Delivered {
		t.Fatalf("healthy run lost data: recorded=%d delivered=%d collector=%d",
			rep.Recorded, rep.Delivered, rep.CollectorTotal)
	}
}
