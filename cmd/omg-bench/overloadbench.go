package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"omg/internal/export"
)

// This file prices the PR-10 admission-control seam: the same violation
// stream ships through HTTPSinks to a live loopback collector twice —
// once with overload protection disabled and once with generous
// per-source token buckets plus an inflight bound configured (generous
// so nothing is actually rejected: what's measured is the bookkeeping
// every admitted request pays, not shedding). BENCH_10.json records the
// throttled-vs-unthrottled overhead, which must stay within 5%.

// benchOverloadRow is one configuration's e2e ingest measurement.
type benchOverloadRow struct {
	Config           string  `json:"config"`
	WallMs           float64 `json:"wall_ms"`
	ViolationsPerSec float64 `json:"violations_per_sec"`
	Batches          int64   `json:"batches"`
}

// benchOverloadReport is the machine-readable shape written to
// BENCH_10.json.
type benchOverloadReport struct {
	Bench      string `json:"bench"`
	Quick      bool   `json:"quick"`
	Violations int    `json:"violations"`
	BatchMax   int    `json:"batch_max"`
	Senders    int    `json:"senders"`

	Ingest       []benchOverloadRow `json:"ingest"`
	OverheadPct  float64            `json:"overhead_pct"`
	BudgetPct    float64            `json:"budget_pct"`
	WithinBudget bool               `json:"within_budget"`
}

// renderOverloadBench races admission-controlled vs unprotected ingest
// e2e and writes outPath (machine-readable; "" skips the file). The run
// fails if the admission layer costs more than its 5% budget.
func renderOverloadBench(quick bool, outPath string) (string, error) {
	n := 400_000
	reps := 3
	if quick {
		n = 40_000
		reps = 2
	}
	const senders, batchMax = 4, 512
	const budgetPct = 5.0
	violations := wireBenchViolations(n)

	// drive ships the whole stream through `senders` concurrent HTTPSinks
	// to one live collector built from cfg, and returns the wall time
	// from first Record to last Flush. Delivery is verified: with the
	// generous limits nothing may be throttled, so a single retry would
	// mean the bench is measuring the wrong thing.
	drive := func(cfg export.CollectorConfig) (time.Duration, int64, error) {
		collector := export.NewCollectorConfig(cfg)
		defer collector.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, 0, err
		}
		srv := &http.Server{Handler: collector.Handler()}
		go srv.Serve(ln)
		defer srv.Close()

		sinks := make([]*export.HTTPSink, senders)
		for i := range sinks {
			if sinks[i], err = export.NewHTTPSink(export.HTTPSinkConfig{
				BaseURL:    "http://" + ln.Addr().String(),
				Source:     fmt.Sprintf("bench-edge-%02d", i),
				QueueDepth: 4096,
				BatchMax:   batchMax,
			}); err != nil {
				return 0, 0, err
			}
		}
		per := n / senders
		start := time.Now()
		var wg sync.WaitGroup
		errc := make(chan error, senders)
		for i, s := range sinks {
			wg.Add(1)
			go func(i int, s *export.HTTPSink) {
				defer wg.Done()
				for _, v := range violations[i*per : (i+1)*per] {
					if err := s.Record(v); err != nil {
						errc <- err
						return
					}
				}
				errc <- s.Close()
			}(i, s)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errc)
		for err := range errc {
			if err != nil {
				return 0, 0, fmt.Errorf("sender: %w", err)
			}
		}
		var batches, retries int64
		for _, s := range sinks {
			st := s.Stats()
			batches += st.Batches
			retries += st.Retries
		}
		if retries != 0 {
			return 0, 0, fmt.Errorf("bench saw %d retries: the generous limits still throttled, results would be shedding not overhead", retries)
		}
		if got, want := collector.TotalFired(), per*senders; got != want {
			return 0, 0, fmt.Errorf("collector ingested %d of %d violations", got, want)
		}
		return elapsed, batches, nil
	}

	configs := []struct {
		name string
		cfg  export.CollectorConfig
	}{
		{"unthrottled", export.CollectorConfig{Shards: senders}},
		// Generous enough that nothing is rejected: the measurement is
		// the per-request token-bucket + inflight accounting, i.e. what
		// every healthy deployment pays for running with guardrails on.
		{"throttled", export.CollectorConfig{
			Shards:         senders,
			RateLimitBytes: 1 << 30,
			RateBurstBytes: 1 << 30,
			MaxInflight:    1024,
		}},
	}

	rep := benchOverloadReport{Bench: "overload", Quick: quick, Violations: n, BatchMax: batchMax, Senders: senders, BudgetPct: budgetPct}
	// Interleaved repetitions, best (shortest) run kept, so scheduler
	// noise cancels instead of landing on one configuration.
	best := map[string]benchOverloadRow{}
	for r := 0; r < reps; r++ {
		for _, c := range configs {
			elapsed, batches, err := drive(c.cfg)
			if err != nil {
				return "", fmt.Errorf("%s: %w", c.name, err)
			}
			row, seen := best[c.name]
			if !seen || elapsed < time.Duration(row.WallMs*float64(time.Millisecond)) {
				best[c.name] = benchOverloadRow{
					Config:           c.name,
					WallMs:           float64(elapsed.Nanoseconds()) / 1e6,
					ViolationsPerSec: float64(n) / elapsed.Seconds(),
					Batches:          batches,
				}
			}
		}
	}
	for _, c := range configs {
		rep.Ingest = append(rep.Ingest, best[c.name])
	}
	rep.OverheadPct = (best["throttled"].WallMs/best["unthrottled"].WallMs - 1) * 100
	rep.WithinBudget = rep.OverheadPct <= budgetPct

	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return "", fmt.Errorf("write %s: %w", outPath, err)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Admission-control overhead, %d violations through a live loopback collector (%d senders, batch %d):\n",
		n, senders, batchMax)
	fmt.Fprintf(&b, "  %-14s %10s %14s %8s\n", "config", "wall", "violations/s", "batches")
	for _, c := range configs {
		row := best[c.name]
		fmt.Fprintf(&b, "  %-14s %9.0fms %14.0f %8d\n", row.Config, row.WallMs, row.ViolationsPerSec, row.Batches)
	}
	fmt.Fprintf(&b, "  guardrails cost %+.2f%% wall time (budget %.0f%%)\n", rep.OverheadPct, budgetPct)
	if outPath != "" {
		fmt.Fprintf(&b, "  results written to %s\n", outPath)
	}
	if !rep.WithinBudget {
		return b.String(), fmt.Errorf("admission overhead %.2f%% exceeds the %.0f%% budget", rep.OverheadPct, budgetPct)
	}
	return b.String(), nil
}
