package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"omg/internal/export"
	"omg/internal/labelsvc"
)

// This file benchmarks the collector's active-learning loop: assembling
// per-sample candidate feature vectors out of the retained violation log
// and serving budgeted /v1/labels/next pulls over it. Both are measured
// at full retained scale (>= 1M violations) because that is where the
// pool scan dominates — small pools flatter the selector. The numbers go
// to BENCH_7.json.

// labelPullBudget is the batch size every timed pull requests.
const labelPullBudget = 64

// benchLabelReport is the machine-readable shape written to BENCH_7.json.
type benchLabelReport struct {
	Bench      string `json:"bench"`
	Quick      bool   `json:"quick"`
	Violations int    `json:"violations"`
	Pool       int    `json:"pool_candidates"`
	Assertions int    `json:"assertions"`
	Budget     int    `json:"budget"`
	Selector   string `json:"selector"`

	Assembly struct {
		Assemblies     int     `json:"assemblies"`
		NsPerViolation float64 `json:"ns_per_violation"`
		MsPerAssembly  float64 `json:"ms_per_assembly"`
	} `json:"assembly"`

	Next struct {
		Pulls          int     `json:"pulls"`
		NsPerPull      float64 `json:"ns_per_pull"`
		NsPerCandidate float64 `json:"ns_per_candidate"`
		PullsPerSec    float64 `json:"pulls_per_sec"`
	} `json:"next"`

	Feedback struct {
		Items     int     `json:"items"`
		NsPerItem float64 `json:"ns_per_item"`
	} `json:"feedback"`
}

// renderLabelBench ingests n violations into an in-memory collector,
// times forced candidate-pool assemblies, then serves timed
// /v1/labels/next pulls and /v1/labels/feedback posts through the real
// HTTP handler — the deployed path a label puller hits. Results land in
// outPath (machine-readable; "" skips the file).
func renderLabelBench(quick bool, outPath string) (string, error) {
	// 1M retained violations -> 1M distinct (stream, sample) candidates:
	// the acceptance scale the selection loop must stay interactive at.
	n, assemblies, pulls := 1_000_000, 3, 16
	if quick {
		n, assemblies, pulls = 100_000, 2, 8
	}
	rep := benchLabelReport{Bench: "labels", Quick: quick, Violations: n, Budget: labelPullBudget}

	c, err := export.OpenCollector(export.CollectorConfig{Shards: 1})
	if err != nil {
		return "", err
	}
	defer c.Close()
	if _, err := driveCollectorIngest(c, n); err != nil {
		return "", fmt.Errorf("label bench ingest: %w", err)
	}

	// --- Candidate assembly: each round invalidates the cached pool (as
	// any ingest does) and rebuilds the per-sample feature vectors from
	// the full retained log.
	svc := c.Labels()
	var assemblyWall time.Duration
	for t := 0; t < assemblies; t++ {
		svc.ObserveBatch("bench", nil) // invalidate: the next scan reassembles
		start := time.Now()
		pool := svc.Pool()
		assemblyWall += time.Since(start)
		rep.Pool = len(pool)
	}
	stats := svc.Stats()
	rep.Assertions = stats.Assertions
	rep.Selector = stats.Selector

	// --- Serving: timed pulls through the real handler, then the labels
	// posted back. Pulls after the first hit the cached assembly, so this
	// measures selection + availability scan + lease + encode.
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	var pulled []labelsvc.Candidate
	pullStart := time.Now()
	for i := 0; i < pulls; i++ {
		resp, err := http.Get(fmt.Sprintf("%s%s?budget=%d&puller=bench-%d", srv.URL, export.LabelsNextPath, labelPullBudget, i))
		if err != nil {
			return "", err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("labels/next: %s: %s", resp.Status, body)
		}
		var batch export.LabelsNextResponse
		if err := json.Unmarshal(body, &batch); err != nil {
			return "", fmt.Errorf("labels/next decode: %w", err)
		}
		if batch.Count != labelPullBudget {
			return "", fmt.Errorf("pull %d served %d candidates, want %d", i, batch.Count, labelPullBudget)
		}
		pulled = append(pulled, batch.Candidates...)
	}
	pullWall := time.Since(pullStart)

	fb := export.LabelsFeedbackRequest{Version: export.WireVersion}
	for _, cand := range pulled {
		fb.Labels = append(fb.Labels, labelsvc.Feedback{SampleKey: cand.SampleKey, ModelCorrect: false})
	}
	fbBody, err := json.Marshal(fb)
	if err != nil {
		return "", err
	}
	fbStart := time.Now()
	resp, err := http.Post(srv.URL+export.LabelsFeedbackPath, "application/json", bytes.NewReader(fbBody))
	if err != nil {
		return "", err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fbWall := time.Since(fbStart)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("labels/feedback: %s", resp.Status)
	}

	rep.Assembly.Assemblies = assemblies
	rep.Assembly.NsPerViolation = float64(assemblyWall.Nanoseconds()) / float64(assemblies) / float64(n)
	rep.Assembly.MsPerAssembly = float64(assemblyWall.Nanoseconds()) / float64(assemblies) / 1e6
	rep.Next.Pulls = pulls
	rep.Next.NsPerPull = float64(pullWall.Nanoseconds()) / float64(pulls)
	rep.Next.NsPerCandidate = rep.Next.NsPerPull / float64(labelPullBudget)
	rep.Next.PullsPerSec = float64(pulls) / pullWall.Seconds()
	rep.Feedback.Items = len(fb.Labels)
	rep.Feedback.NsPerItem = float64(fbWall.Nanoseconds()) / float64(len(fb.Labels))

	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return "", fmt.Errorf("write %s: %w", outPath, err)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Label loop over %d retained violations (%d candidates, %d assertions, selector %s):\n",
		rep.Violations, rep.Pool, rep.Assertions, rep.Selector)
	fmt.Fprintf(&b, "  candidate assembly:   %10.1f ns/violation  (%.1f ms per full rebuild)\n",
		rep.Assembly.NsPerViolation, rep.Assembly.MsPerAssembly)
	fmt.Fprintf(&b, "  /v1/labels/next:      %10.0f ns/pull       (budget %d, %.1f pulls/s)\n",
		rep.Next.NsPerPull, rep.Budget, rep.Next.PullsPerSec)
	fmt.Fprintf(&b, "  /v1/labels/feedback:  %10.0f ns/label      (%d labels in one post)\n",
		rep.Feedback.NsPerItem, rep.Feedback.Items)
	if outPath != "" {
		fmt.Fprintf(&b, "  results written to %s\n", outPath)
	}
	return b.String(), nil
}
