package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"omg/internal/assertion"
)

// This file races the PR-5 zero-allocation observe path against a
// faithful reimplementation of the pre-PR hot path, so the speedup is
// measured on the same host and binary instead of across checkouts, and
// writes the numbers to a machine-readable BENCH_5.json for the repo's
// perf trajectory.
//
// The baseline reproduces exactly what Monitor.Observe did before this
// PR: slide-by-reslice window with a fresh copy per sample, a freshly
// allocated severity vector per evaluation (Suite.Evaluate), a
// Suite.Names() allocation per sample, and a defensive copy of the action
// list per sample. The encode baseline is encoding/json.Marshal per
// violation, which is what the JSONL sink, wire batches and SSE tail paid
// before AppendViolationJSON.

// oldMonitor is the pre-PR Monitor hot path, preserved for the race.
type oldMonitor struct {
	suite      *assertion.Suite
	windowSize int

	mu       sync.Mutex
	window   []assertion.Sample
	recorder *assertion.Recorder
	actions  []struct {
		threshold float64
		action    assertion.Action
	}
	observed int
}

func (m *oldMonitor) observe(s assertion.Sample) assertion.Vector {
	m.mu.Lock()
	m.window = append(m.window, s)
	if len(m.window) > m.windowSize {
		m.window = m.window[len(m.window)-m.windowSize:]
	}
	window := make([]assertion.Sample, len(m.window))
	copy(window, m.window)
	m.observed++
	actions := make([]struct {
		threshold float64
		action    assertion.Action
	}, len(m.actions))
	copy(actions, m.actions)
	m.mu.Unlock()

	vec := m.suite.Evaluate(window)
	names := m.suite.Names()
	for i, sev := range vec {
		if sev <= 0 {
			continue
		}
		v := assertion.Violation{
			Assertion:   names[i],
			Stream:      s.Stream,
			SampleIndex: s.Index,
			Time:        s.Time,
			Severity:    sev,
		}
		m.recorder.Record(v)
		for _, spec := range actions {
			if sev >= spec.threshold {
				spec.action(v)
			}
		}
	}
	return vec
}

// observeSuite mirrors the monitor benchmarks' suite: one abstaining
// assertion and one cheap temporal one, so the measurement is the
// runtime's overhead, not assertion work.
func observeSuite() *assertion.Suite {
	return assertion.NewSuite(
		assertion.New("noop", func([]assertion.Sample) float64 { return 0 }),
		assertion.New("len", func(w []assertion.Sample) float64 { return -float64(len(w)) }),
	)
}

// benchObserveReport is the machine-readable shape written to BENCH_5.json.
type benchObserveReport struct {
	Bench   string `json:"bench"`
	Quick   bool   `json:"quick"`
	Samples int    `json:"samples"`

	Observe struct {
		OldNsPerOp       float64 `json:"old_ns_per_op"`
		NewNsPerOp       float64 `json:"new_ns_per_op"`
		OldSamplesPerSec float64 `json:"old_samples_per_sec"`
		NewSamplesPerSec float64 `json:"new_samples_per_sec"`
		Speedup          float64 `json:"speedup"`
	} `json:"observe"`

	Batch struct {
		PerSampleSamplesPerSec float64 `json:"per_sample_samples_per_sec"`
		BatchSamplesPerSec     float64 `json:"batch_samples_per_sec"`
		Speedup                float64 `json:"speedup"`
	} `json:"batch_enqueue"`

	Encode struct {
		OldNsPerOp float64 `json:"old_ns_per_op"`
		NewNsPerOp float64 `json:"new_ns_per_op"`
		Speedup    float64 `json:"speedup"`
	} `json:"encode"`
}

// renderObserveBench races the pre-PR observe, batch-enqueue and
// violation-encode paths against the current ones and records the results
// in outPath (machine-readable; "" skips the file).
func renderObserveBench(quick bool, outPath string) (string, error) {
	n := 2_000_000
	if quick {
		n = 200_000
	}

	rep := benchObserveReport{Bench: "observe", Quick: quick, Samples: n}

	// --- Observe: old slide-by-reslice monitor vs zero-allocation ring.
	old := &oldMonitor{suite: observeSuite(), windowSize: 8, recorder: assertion.NewRecorder(0)}
	oldStart := time.Now()
	for i := 0; i < n; i++ {
		old.observe(assertion.Sample{Index: i, Time: float64(i)})
	}
	oldWall := time.Since(oldStart)

	mon := assertion.NewMonitor(observeSuite(), assertion.WithWindowSize(8))
	newStart := time.Now()
	for i := 0; i < n; i++ {
		mon.Observe(assertion.Sample{Index: i, Time: float64(i)})
	}
	newWall := time.Since(newStart)

	rep.Observe.OldNsPerOp = float64(oldWall.Nanoseconds()) / float64(n)
	rep.Observe.NewNsPerOp = float64(newWall.Nanoseconds()) / float64(n)
	rep.Observe.OldSamplesPerSec = float64(n) / oldWall.Seconds()
	rep.Observe.NewSamplesPerSec = float64(n) / newWall.Seconds()
	rep.Observe.Speedup = rep.Observe.NewSamplesPerSec / rep.Observe.OldSamplesPerSec

	// --- Batch enqueue: per-sample Enqueue (the old ObserveBatch body)
	// vs the batch-aware shard-chunk path, identical sample streams.
	const streams, batchSize = 8, 256
	makeBatch := func(base int) []assertion.Sample {
		b := make([]assertion.Sample, batchSize)
		for j := range b {
			b[j] = assertion.Sample{
				Stream: fmt.Sprintf("stream-%d", (base+j)%streams),
				Index:  base + j,
			}
		}
		return b
	}
	batches := n / batchSize
	if quick {
		batches = n / batchSize / 2
	}

	drive := func(batchAware bool) (time.Duration, error) {
		pool := assertion.NewMonitorPool(observeSuite(),
			assertion.WithPoolWindowSize(8), assertion.WithQueueDepth(1024))
		batch := makeBatch(0)
		start := time.Now()
		for bi := 0; bi < batches; bi++ {
			if batchAware {
				if err := pool.ObserveBatch(batch); err != nil {
					return 0, err
				}
				continue
			}
			for _, s := range batch {
				if err := pool.Enqueue(s); err != nil {
					return 0, err
				}
			}
		}
		if err := pool.Flush(); err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		if got, want := pool.Observed(), batches*batchSize; got != want {
			return 0, fmt.Errorf("pool observed %d of %d samples", got, want)
		}
		return elapsed, pool.Close()
	}

	perSampleWall, err := drive(false)
	if err != nil {
		return "", fmt.Errorf("per-sample enqueue: %w", err)
	}
	batchWall, err := drive(true)
	if err != nil {
		return "", fmt.Errorf("batch enqueue: %w", err)
	}
	totalBatchSamples := float64(batches * batchSize)
	rep.Batch.PerSampleSamplesPerSec = totalBatchSamples / perSampleWall.Seconds()
	rep.Batch.BatchSamplesPerSec = totalBatchSamples / batchWall.Seconds()
	rep.Batch.Speedup = rep.Batch.BatchSamplesPerSec / rep.Batch.PerSampleSamplesPerSec

	// --- Encode: encoding/json.Marshal vs the reflection-free appender.
	v := assertion.Violation{
		Assertion: "flicker", Stream: "cam-3", SampleIndex: 123456,
		Time: 4115.2, Severity: 2.5, IngestUnix: 1753800000,
	}
	encN := n
	encStart := time.Now()
	for i := 0; i < encN; i++ {
		if _, err := json.Marshal(v); err != nil {
			return "", err
		}
	}
	encOldWall := time.Since(encStart)
	buf := make([]byte, 0, 256)
	encStart = time.Now()
	for i := 0; i < encN; i++ {
		out, err := assertion.AppendViolationJSON(buf, v)
		if err != nil {
			return "", err
		}
		_ = out
	}
	encNewWall := time.Since(encStart)
	rep.Encode.OldNsPerOp = float64(encOldWall.Nanoseconds()) / float64(encN)
	rep.Encode.NewNsPerOp = float64(encNewWall.Nanoseconds()) / float64(encN)
	rep.Encode.Speedup = rep.Encode.OldNsPerOp / rep.Encode.NewNsPerOp

	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return "", fmt.Errorf("write %s: %w", outPath, err)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Observe hot path, %d samples (single stream, window 8):\n", n)
	fmt.Fprintf(&b, "  %-26s %12s %16s\n", "path", "ns/sample", "samples/s")
	fmt.Fprintf(&b, "  %-26s %12.1f %16.0f\n", "pre-PR (alloc per sample)", rep.Observe.OldNsPerOp, rep.Observe.OldSamplesPerSec)
	fmt.Fprintf(&b, "  %-26s %12.1f %16.0f\n", "ring+reuse (this PR)", rep.Observe.NewNsPerOp, rep.Observe.NewSamplesPerSec)
	fmt.Fprintf(&b, "  observe speedup: %.2fx\n\n", rep.Observe.Speedup)
	fmt.Fprintf(&b, "Async ingestion, %d samples in %d-sample batches over %d streams:\n", batches*batchSize, batchSize, streams)
	fmt.Fprintf(&b, "  %-26s %16.0f samples/s\n", "per-sample Enqueue", rep.Batch.PerSampleSamplesPerSec)
	fmt.Fprintf(&b, "  %-26s %16.0f samples/s\n", "batch-aware ObserveBatch", rep.Batch.BatchSamplesPerSec)
	fmt.Fprintf(&b, "  batch speedup: %.2fx\n\n", rep.Batch.Speedup)
	fmt.Fprintf(&b, "Violation encode, %d violations:\n", encN)
	fmt.Fprintf(&b, "  %-26s %12.1f ns/violation\n", "encoding/json.Marshal", rep.Encode.OldNsPerOp)
	fmt.Fprintf(&b, "  %-26s %12.1f ns/violation\n", "AppendViolationJSON", rep.Encode.NewNsPerOp)
	fmt.Fprintf(&b, "  encode speedup: %.2fx\n", rep.Encode.Speedup)
	if outPath != "" {
		fmt.Fprintf(&b, "  results written to %s\n", outPath)
	}
	return b.String(), nil
}
