// Command omg-bench regenerates every table and figure of the paper's
// evaluation at full scale and prints them in the paper's row/series
// format.
//
// Usage:
//
//	omg-bench                 # run everything
//	omg-bench -only table4    # one experiment: table1..4, table6,
//	                          # figure3, figure4a, figure4b, figure5,
//	                          # sinkbench (JSONL vs loopback HTTP export),
//	                          # fanin (sharded vs single-recorder collector),
//	                          # store (mem vs on-disk segment violation store),
//	                          # labels (candidate assembly + label serving),
//	                          # obs (instrumented vs uninstrumented hot paths),
//	                          # wire (JSON vs binary batch codec e2e),
//	                          # overload (admission-control overhead)
//	omg-bench -quick          # reduced sizes (CI smoke run)
//	omg-bench -root DIR       # repository root for Table 2 (default .)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"omg/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment (table1..table4, table6, figure3, figure4a, figure4b, figure5, sinkbench, fanin, observe, store, labels, obs, wire, overload)")
	quick := flag.Bool("quick", false, "use reduced experiment sizes")
	root := flag.String("root", ".", "repository root (for Table 2 LOC measurement)")
	benchOut := flag.String("bench-out", "BENCH_5.json", "where the observe experiment writes its machine-readable results (empty disables)")
	storeBenchOut := flag.String("store-bench-out", "BENCH_6.json", "where the store experiment writes its machine-readable results (empty disables)")
	labelBenchOut := flag.String("label-bench-out", "BENCH_7.json", "where the labels experiment writes its machine-readable results (empty disables)")
	obsBenchOut := flag.String("obs-bench-out", "BENCH_8.json", "where the obs experiment writes its machine-readable results (empty disables)")
	wireBenchOut := flag.String("wire-bench-out", "BENCH_9.json", "where the wire experiment writes its machine-readable results (empty disables)")
	overloadBenchOut := flag.String("overload-bench-out", "BENCH_10.json", "where the overload experiment writes its machine-readable results (empty disables)")
	flag.Parse()

	scale := experiments.FullScale()
	if *quick {
		scale = experiments.QuickScale()
	}

	runs := []struct {
		name string
		run  func() (string, error)
	}{
		{"table1", func() (string, error) { return experiments.RenderTable1(), nil }},
		{"table2", func() (string, error) { return experiments.RenderTable2(*root) }},
		{"table3", func() (string, error) { return experiments.RenderTable3(scale), nil }},
		{"figure3", func() (string, error) { return experiments.RenderFigure3(scale), nil }},
		{"figure4a", func() (string, error) {
			return experiments.RenderAL("Figure 4a/9a: active learning, night-street (mAP x100)", experiments.Figure4a(scale), true), nil
		}},
		{"figure4b", func() (string, error) {
			return experiments.RenderAL("Figure 4b/9b: active learning, NuScenes-style AV (mAP x100)", experiments.Figure4b(scale), true), nil
		}},
		{"figure5", func() (string, error) {
			return experiments.RenderAL("Figure 5: active learning, ECG (accuracy x100)", experiments.Figure5(scale), true), nil
		}},
		{"table4", func() (string, error) { return experiments.RenderTable4(scale), nil }},
		{"table6", func() (string, error) { return experiments.RenderTable6(scale), nil }},
		{"sinkbench", func() (string, error) { return renderSinkBench(*quick) }},
		{"fanin", func() (string, error) { return renderFanInBench(*quick) }},
		{"observe", func() (string, error) { return renderObserveBench(*quick, *benchOut) }},
		{"store", func() (string, error) { return renderStoreBench(*quick, *storeBenchOut) }},
		{"labels", func() (string, error) { return renderLabelBench(*quick, *labelBenchOut) }},
		{"obs", func() (string, error) { return renderObsBench(*quick, *obsBenchOut) }},
		{"wire", func() (string, error) { return renderWireBench(*quick, *wireBenchOut) }},
		{"overload", func() (string, error) { return renderOverloadBench(*quick, *overloadBenchOut) }},
	}

	matched := false
	for _, r := range runs {
		if *only != "" && !strings.EqualFold(*only, r.name) {
			continue
		}
		matched = true
		start := time.Now()
		out, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (scale: %s, %.1fs) ===\n%s\n", r.name, scale.Name, time.Since(start).Seconds(), out)
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
}
