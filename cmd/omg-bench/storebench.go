package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"omg/internal/assertion"
	"omg/internal/export"
	"omg/internal/store"
)

// This file races the two violation-store backends — the in-memory
// MemStore and the on-disk SegmentStore — over identical workloads, so
// the cost of durability is measured on the same host and binary. Ingest
// is driven through Collector.Ingest in wire batches: that is the
// deployed path omg-server's -store flag selects between, and it is
// where the disk backend pays its real per-batch costs (segment append,
// one flushing write syscall, a dedup-mark line). Queries and cold
// recovery run against the raw stores. The numbers go to BENCH_6.json;
// the repo's acceptance bar is disk ingest within 2x of mem.

// ingestBatch is the wire-batch size the ingest race ships — the same
// default HTTPSink batches at.
const ingestBatch = 256

// benchStoreReport is the machine-readable shape written to BENCH_6.json.
type benchStoreReport struct {
	Bench      string `json:"bench"`
	Quick      bool   `json:"quick"`
	Violations int    `json:"violations"`
	BatchSize  int    `json:"batch_size"`
	Queries    int    `json:"queries"`

	Ingest struct {
		MemNsPerOp  float64 `json:"mem_ns_per_op"`
		DiskNsPerOp float64 `json:"disk_ns_per_op"`
		MemPerSec   float64 `json:"mem_violations_per_sec"`
		DiskPerSec  float64 `json:"disk_violations_per_sec"`
		DiskOverMem float64 `json:"disk_over_mem_ratio"`
	} `json:"ingest"`

	Query struct {
		MemNsPerQuery  float64 `json:"mem_ns_per_query"`
		DiskNsPerQuery float64 `json:"disk_ns_per_query"`
		DiskOverMem    float64 `json:"disk_over_mem_ratio"`
	} `json:"query"`

	Recovery struct {
		ReopenMs   float64 `json:"disk_reopen_ms"`
		DiskBytes  int64   `json:"disk_bytes"`
		Segments   int     `json:"segments"`
		Recovered  int     `json:"recovered_entries"`
		Checkpoint bool    `json:"with_checkpoint"`
	} `json:"recovery"`
}

// storeBenchViolation returns the i-th violation of the deterministic
// bench stream: 16 assertions x 8 streams, monotone ingest stamps.
func storeBenchViolation(i int) assertion.Violation {
	return assertion.Violation{
		Assertion:   fmt.Sprintf("assert-%02d", i%16),
		Stream:      fmt.Sprintf("cam-%d", i%8),
		SampleIndex: i,
		Time:        float64(i) * 0.04,
		Severity:    1 + float64(i%5),
		IngestUnix:  1753800000 + int64(i/1000),
	}
}

// driveCollectorIngest ships n violations through Collector.Ingest in
// wire batches and returns the wall time. After every acknowledged batch
// a disk-backed collector has flushed the records to the OS, so the disk
// number buys process-crash (SIGKILL) durability per batch.
func driveCollectorIngest(c *export.Collector, n int) (time.Duration, error) {
	batch := make([]assertion.Violation, 0, ingestBatch)
	var seq uint64
	start := time.Now()
	for i := 0; i < n; {
		batch = batch[:0]
		for len(batch) < ingestBatch && i < n {
			batch = append(batch, storeBenchViolation(i))
			i++
		}
		seq++
		if got, dup := c.Ingest(export.Batch{Source: "bench", Seq: seq, Violations: batch}); dup || got != len(batch) {
			return 0, fmt.Errorf("batch %d: accepted %d of %d (dup=%v)", seq, got, len(batch), dup)
		}
	}
	return time.Since(start), nil
}

// driveStoreIngest appends n violations directly (the query and recovery
// fixtures), with one final Sync for the disk tail.
func driveStoreIngest(s store.ViolationStore, n int) error {
	for i := 0; i < n; i++ {
		if err := s.Append(storeBenchViolation(i)); err != nil {
			return err
		}
	}
	return s.Sync()
}

// driveStoreQueries runs q mixed queries (by assertion, by stream, and
// time-windowed with a limit) and returns the wall time plus a result
// checksum so the work cannot be optimised away.
func driveStoreQueries(s store.ViolationStore, q int) (time.Duration, int) {
	sum := 0
	start := time.Now()
	for i := 0; i < q; i++ {
		query := store.Query{Assertion: fmt.Sprintf("assert-%02d", i%16), Limit: 100}
		switch i % 3 {
		case 1:
			query.Stream = fmt.Sprintf("cam-%d", i%8)
		case 2:
			query.MinIngestUnix = 1753800000 + int64(i%200)
		}
		sum += len(s.Query(query))
	}
	return time.Since(start), sum
}

// renderStoreBench races the mem and disk backends on collector ingest
// and store queries, measures cold recovery of the segment files, and
// records the results in outPath (machine-readable; "" skips the file).
// Each backend runs several trials and the best wall time counts — the
// usual guard against scheduler and page-cache noise skewing one run.
func renderStoreBench(quick bool, outPath string) (string, error) {
	// 2M violations: enough that segment rolls, slice growth and page
	// faults all amortise to their steady-state per-record cost (short
	// runs flatter the mem backend, whose growth stalls shrink faster
	// than the disk backend's roll fsyncs).
	n, q, trials := 2_000_000, 200, 2
	if quick {
		n, q, trials = 200_000, 100, 2
	}
	rep := benchStoreReport{Bench: "store", Quick: quick, Violations: n, BatchSize: ingestBatch, Queries: q}

	best := func(cur, wall time.Duration) time.Duration {
		if cur == 0 || wall < cur {
			return wall
		}
		return cur
	}

	// --- Ingest race: identical batch streams through both collectors.
	var memIngest, diskIngest time.Duration
	for t := 0; t < trials; t++ {
		mem, err := export.OpenCollector(export.CollectorConfig{Shards: 1})
		if err != nil {
			return "", err
		}
		wall, err := driveCollectorIngest(mem, n)
		if err != nil {
			mem.Close()
			return "", fmt.Errorf("mem ingest: %w", err)
		}
		if got := mem.TotalFired(); got != n {
			mem.Close()
			return "", fmt.Errorf("mem collector holds %d of %d violations", got, n)
		}
		mem.Close()
		memIngest = best(memIngest, wall)

		dir, err := os.MkdirTemp("", "omg-storebench")
		if err != nil {
			return "", err
		}
		disk, err := export.OpenCollector(export.CollectorConfig{
			Shards: 1, Store: export.StoreDisk, DataDir: dir,
		})
		if err != nil {
			return "", err
		}
		wall, err = driveCollectorIngest(disk, n)
		if err != nil {
			disk.Close()
			return "", fmt.Errorf("disk ingest: %w", err)
		}
		if got := disk.TotalFired(); got != n {
			disk.Close()
			return "", fmt.Errorf("disk collector holds %d of %d violations", got, n)
		}
		if err := disk.Close(); err != nil {
			return "", fmt.Errorf("close disk collector: %w", err)
		}
		// Drop the trial's data right away: unlinking lets the kernel
		// discard its dirty pages instead of writing ~260 MiB back while
		// the next trial is being timed.
		os.RemoveAll(dir)
		diskIngest = best(diskIngest, wall)
	}

	// --- Query race over raw stores holding the identical n violations.
	memStore := store.NewMemStore(0)
	if err := driveStoreIngest(memStore, n); err != nil {
		return "", fmt.Errorf("mem query fixture: %w", err)
	}
	diskDir, err := os.MkdirTemp("", "omg-storebench")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(diskDir)
	diskStore, err := store.Open(store.Config{Dir: diskDir})
	if err != nil {
		return "", err
	}
	if err := driveStoreIngest(diskStore, n); err != nil {
		return "", fmt.Errorf("disk query fixture: %w", err)
	}
	var memQuery, diskQuery time.Duration
	for t := 0; t < trials; t++ {
		memWall, memSum := driveStoreQueries(memStore, q)
		diskWall, diskSum := driveStoreQueries(diskStore, q)
		if memSum != diskSum {
			return "", fmt.Errorf("query parity broken: mem saw %d results, disk %d", memSum, diskSum)
		}
		memQuery = best(memQuery, memWall)
		diskQuery = best(diskQuery, diskWall)
	}
	info := diskStore.Info()
	if err := diskStore.Close(); err != nil {
		return "", fmt.Errorf("close segment store: %w", err)
	}

	// --- Cold recovery: reopen the segment directory from scratch.
	reopenStart := time.Now()
	recovered, err := store.Open(store.Config{Dir: diskDir})
	if err != nil {
		return "", fmt.Errorf("reopen segment store: %w", err)
	}
	reopenWall := time.Since(reopenStart)
	if got := recovered.TotalFired(); got != n {
		return "", fmt.Errorf("recovery lost violations: %d of %d", got, n)
	}
	rep.Recovery.Recovered = len(recovered.Violations())
	recovered.Close()

	rep.Ingest.MemNsPerOp = float64(memIngest.Nanoseconds()) / float64(n)
	rep.Ingest.DiskNsPerOp = float64(diskIngest.Nanoseconds()) / float64(n)
	rep.Ingest.MemPerSec = float64(n) / memIngest.Seconds()
	rep.Ingest.DiskPerSec = float64(n) / diskIngest.Seconds()
	rep.Ingest.DiskOverMem = rep.Ingest.DiskNsPerOp / rep.Ingest.MemNsPerOp
	rep.Query.MemNsPerQuery = float64(memQuery.Nanoseconds()) / float64(q)
	rep.Query.DiskNsPerQuery = float64(diskQuery.Nanoseconds()) / float64(q)
	rep.Query.DiskOverMem = rep.Query.DiskNsPerQuery / rep.Query.MemNsPerQuery
	rep.Recovery.ReopenMs = float64(reopenWall.Nanoseconds()) / 1e6
	rep.Recovery.DiskBytes = info.Bytes
	rep.Recovery.Segments = info.Segments
	rep.Recovery.Checkpoint = true // Close checkpointed before the reopen

	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return "", fmt.Errorf("write %s: %w", outPath, err)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Collector ingest, %d violations in %d-violation batches (16 assertions x 8 streams):\n", n, ingestBatch)
	fmt.Fprintf(&b, "  %-22s %12s %16s\n", "backend", "ns/violation", "violations/s")
	fmt.Fprintf(&b, "  %-22s %12.1f %16.0f\n", "mem", rep.Ingest.MemNsPerOp, rep.Ingest.MemPerSec)
	fmt.Fprintf(&b, "  %-22s %12.1f %16.0f\n", "disk (segments)", rep.Ingest.DiskNsPerOp, rep.Ingest.DiskPerSec)
	fmt.Fprintf(&b, "  disk/mem ingest ratio: %.2fx\n\n", rep.Ingest.DiskOverMem)
	fmt.Fprintf(&b, "Store queries, %d mixed (assertion/stream/window, limit 100):\n", q)
	fmt.Fprintf(&b, "  %-22s %12.1f ns/query\n", "mem", rep.Query.MemNsPerQuery)
	fmt.Fprintf(&b, "  %-22s %12.1f ns/query\n", "disk (segments)", rep.Query.DiskNsPerQuery)
	fmt.Fprintf(&b, "  disk/mem query ratio: %.2fx\n\n", rep.Query.DiskOverMem)
	fmt.Fprintf(&b, "Cold recovery: %d violations from %d segments (%.1f MiB) in %.1f ms\n",
		rep.Recovery.Recovered, rep.Recovery.Segments, float64(rep.Recovery.DiskBytes)/(1<<20), rep.Recovery.ReopenMs)
	if outPath != "" {
		fmt.Fprintf(&b, "  results written to %s\n", outPath)
	}
	return b.String(), nil
}
