package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"omg/internal/assertion"
	"omg/internal/export"
	"omg/internal/obs"
)

// This file prices the PR-8 observability layer: the same Monitor.Observe
// and pool-enqueue hot paths run with instrumentation disabled
// (obs.SetEnabled(false), every timer a dead branch) and enabled at the
// default 1-in-64 hot-path sampling rate, in interleaved repetitions on
// the same binary, so BENCH_8.json records what the stage histograms
// actually cost where it matters. It also measures the raw
// obs.Histogram.Record, checks both hot paths stay allocation-free, and
// smoke-validates a live disk-backed collector's /metrics page against
// the strict exposition parser.

// benchObsReport is the machine-readable shape written to BENCH_8.json.
type benchObsReport struct {
	Bench   string `json:"bench"`
	Quick   bool   `json:"quick"`
	Samples int    `json:"samples"`

	Observe struct {
		UninstrumentedNsPerOp float64 `json:"uninstrumented_ns_per_op"`
		InstrumentedNsPerOp   float64 `json:"instrumented_ns_per_op"`
		OverheadPct           float64 `json:"overhead_pct"`
		AllocsPerOp           float64 `json:"allocs_per_op"`
	} `json:"observe"`

	Enqueue struct {
		UninstrumentedSamplesPerSec float64 `json:"uninstrumented_samples_per_sec"`
		InstrumentedSamplesPerSec   float64 `json:"instrumented_samples_per_sec"`
		OverheadPct                 float64 `json:"overhead_pct"`
	} `json:"batch_enqueue"`

	HistogramRecordNsPerOp float64 `json:"histogram_record_ns_per_op"`
	HistogramRecordAllocs  float64 `json:"histogram_record_allocs_per_op"`
	ExpositionValid        bool    `json:"exposition_valid"`
}

// renderObsBench races the instrumented hot paths against themselves with
// instrumentation off and records the results in outPath
// (machine-readable; "" skips the file).
func renderObsBench(quick bool, outPath string) (string, error) {
	n := 2_000_000
	reps := 5
	if quick {
		n = 200_000
		reps = 3
	}
	// The toggle is process-wide; leave instrumentation on for whatever
	// runs after this experiment.
	defer obs.SetEnabled(true)

	rep := benchObsReport{Bench: "obs", Quick: quick, Samples: n}

	// --- Observe: interleaved disabled/enabled repetitions, keeping the
	// minimum ns/op of each so scheduler noise cancels instead of landing
	// on one side of the race.
	observeRun := func(enabled bool) float64 {
		obs.SetEnabled(enabled)
		mon := assertion.NewMonitor(observeSuite(), assertion.WithWindowSize(8))
		start := time.Now()
		for i := 0; i < n; i++ {
			mon.Observe(assertion.Sample{Index: i, Time: float64(i)})
		}
		return float64(time.Since(start).Nanoseconds()) / float64(n)
	}
	observeRun(false) // warm-up, discarded
	observeRun(true)
	var offNs, onNs float64
	for r := 0; r < reps; r++ {
		if o := observeRun(false); offNs == 0 || o < offNs {
			offNs = o
		}
		if o := observeRun(true); onNs == 0 || o < onNs {
			onNs = o
		}
	}
	rep.Observe.UninstrumentedNsPerOp = offNs
	rep.Observe.InstrumentedNsPerOp = onNs
	rep.Observe.OverheadPct = (onNs/offNs - 1) * 100

	// Allocation check at the worst case: every Observe sampled, not 1 in
	// 64, so the timer branch itself is on trial.
	obs.SetEnabled(true)
	obs.SetHotSampleEvery(1)
	allocMon := assertion.NewMonitor(observeSuite(), assertion.WithWindowSize(8))
	idx := 0
	rep.Observe.AllocsPerOp = testing.AllocsPerRun(10000, func() {
		allocMon.Observe(assertion.Sample{Index: idx, Time: float64(idx)})
		idx++
	})
	obs.SetHotSampleEvery(64)

	// --- Batch enqueue: the pool's multi-producer path, where the queue-
	// wait stamp rides every shard chunk.
	const batchSize = 256
	batches := n / batchSize
	enqueueRun := func(enabled bool) (float64, error) {
		obs.SetEnabled(enabled)
		pool := assertion.NewMonitorPool(observeSuite(),
			assertion.WithPoolWindowSize(8), assertion.WithQueueDepth(1024))
		batch := make([]assertion.Sample, batchSize)
		for j := range batch {
			batch[j] = assertion.Sample{Stream: fmt.Sprintf("stream-%d", j%8), Index: j}
		}
		start := time.Now()
		for bi := 0; bi < batches; bi++ {
			if err := pool.ObserveBatch(batch); err != nil {
				return 0, err
			}
		}
		if err := pool.Flush(); err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		if got, want := pool.Observed(), batches*batchSize; got != want {
			return 0, fmt.Errorf("pool observed %d of %d samples", got, want)
		}
		return float64(batches*batchSize) / elapsed.Seconds(), pool.Close()
	}
	var enqOff, enqOn float64
	for r := 0; r < reps; r++ {
		o, err := enqueueRun(false)
		if err != nil {
			return "", fmt.Errorf("uninstrumented enqueue: %w", err)
		}
		if o > enqOff {
			enqOff = o
		}
		o, err = enqueueRun(true)
		if err != nil {
			return "", fmt.Errorf("instrumented enqueue: %w", err)
		}
		if o > enqOn {
			enqOn = o
		}
	}
	rep.Enqueue.UninstrumentedSamplesPerSec = enqOff
	rep.Enqueue.InstrumentedSamplesPerSec = enqOn
	rep.Enqueue.OverheadPct = (enqOff/enqOn - 1) * 100

	// --- Raw Histogram.Record: the primitive every stage timer bottoms
	// out in. Benchmarked on a throwaway registry so the process-wide
	// /metrics page is not polluted with bench series.
	obs.SetEnabled(true)
	hist := obs.NewRegistry().NewHistogram("bench_record_seconds", "bench")
	recN := n
	start := time.Now()
	for i := 0; i < recN; i++ {
		hist.Record(time.Duration(i&0xFFFF) * time.Nanosecond)
	}
	rep.HistogramRecordNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(recN)
	d := 500 * time.Nanosecond
	rep.HistogramRecordAllocs = testing.AllocsPerRun(10000, func() { hist.Record(d) })

	// --- Exposition smoke test: a real disk-backed collector ingests a
	// stamped batch and its /metrics page must satisfy the strict parser
	// and carry the stage families dashboards scrape.
	valid, err := validateCollectorExposition()
	if err != nil {
		return "", err
	}
	rep.ExpositionValid = valid

	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return "", fmt.Errorf("write %s: %w", outPath, err)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Instrumentation overhead, %d samples (window 8, 1-in-64 sampling):\n", n)
	fmt.Fprintf(&b, "  %-30s %12s\n", "path", "ns/sample")
	fmt.Fprintf(&b, "  %-30s %12.1f\n", "Observe, obs disabled", rep.Observe.UninstrumentedNsPerOp)
	fmt.Fprintf(&b, "  %-30s %12.1f\n", "Observe, obs enabled", rep.Observe.InstrumentedNsPerOp)
	fmt.Fprintf(&b, "  observe overhead: %+.1f%%, %.1f allocs/op (every op sampled)\n\n",
		rep.Observe.OverheadPct, rep.Observe.AllocsPerOp)
	fmt.Fprintf(&b, "Batch enqueue, %d samples in %d-sample batches:\n", batches*batchSize, batchSize)
	fmt.Fprintf(&b, "  %-30s %16.0f samples/s\n", "ObserveBatch, obs disabled", rep.Enqueue.UninstrumentedSamplesPerSec)
	fmt.Fprintf(&b, "  %-30s %16.0f samples/s\n", "ObserveBatch, obs enabled", rep.Enqueue.InstrumentedSamplesPerSec)
	fmt.Fprintf(&b, "  enqueue overhead: %+.1f%%\n\n", rep.Enqueue.OverheadPct)
	fmt.Fprintf(&b, "obs.Histogram.Record: %.1f ns/op, %.1f allocs/op\n",
		rep.HistogramRecordNsPerOp, rep.HistogramRecordAllocs)
	fmt.Fprintf(&b, "collector /metrics exposition: strict-parser valid = %v\n", rep.ExpositionValid)
	if outPath != "" {
		fmt.Fprintf(&b, "  results written to %s\n", outPath)
	}
	return b.String(), nil
}

// validateCollectorExposition stands up an in-process disk-backed
// collector, ingests one observe-stamped batch and runs its /metrics page
// through the strict exposition parser, requiring the stage families this
// PR added. Returns an error (never false) on any failure so the bench
// run exits non-zero.
func validateCollectorExposition() (bool, error) {
	dir, err := os.MkdirTemp("", "omg-obsbench-")
	if err != nil {
		return false, err
	}
	defer os.RemoveAll(dir)
	c, err := export.OpenCollector(export.CollectorConfig{Store: export.StoreDisk, DataDir: dir})
	if err != nil {
		return false, fmt.Errorf("open collector: %w", err)
	}
	defer c.Close()
	now := time.Now().UnixNano()
	c.Ingest(export.Batch{
		Version: export.WireVersion, Source: "bench-edge", Seq: 1,
		Violations: []assertion.Violation{{
			Assertion: "bench-assert", Stream: "cam-00", SampleIndex: 1,
			Severity: 1, ObservedUnixNano: now - int64(3*time.Millisecond),
		}},
	})
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, req)
	body := rec.Body.Bytes()
	if err := obs.ValidateExposition(body); err != nil {
		return false, fmt.Errorf("collector /metrics rejected by strict parser: %w", err)
	}
	for _, family := range []string{
		"omg_collector_ingest_apply_seconds",
		"omg_store_append_seconds",
		"omg_collector_e2e_age_seconds",
	} {
		if !strings.Contains(string(body), "# TYPE "+family+" histogram") {
			return false, fmt.Errorf("collector /metrics is missing family %s", family)
		}
	}
	return true, nil
}
