package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"omg/internal/assertion"
	"omg/internal/export"
)

// renderSinkBench measures the violation export path beside the local
// baseline so the network hop shows up in the perf trajectory: the same
// violation stream is pushed through a JSONLSink writing to io.Discard
// and through an HTTPSink delivering to a loopback Collector, and both
// are timed end-to-end (Record through Flush). The collector's ingested
// count is checked against the sent count, so the benchmark doubles as a
// delivery smoke test.
func renderSinkBench(quick bool) (string, error) {
	n := 200000
	if quick {
		n = 20000
	}
	violations := make([]assertion.Violation, n)
	for i := range violations {
		violations[i] = assertion.Violation{
			Assertion:   "bench-assert",
			Stream:      fmt.Sprintf("cam-%02d", i%8),
			SampleIndex: i,
			Time:        float64(i) / 30,
			Severity:    1 + float64(i%5),
		}
	}

	drive := func(s assertion.Sink) (time.Duration, error) {
		start := time.Now()
		for _, v := range violations {
			if err := s.Record(v); err != nil {
				return 0, err
			}
		}
		if err := s.Flush(); err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		return elapsed, s.Close()
	}

	jsonlTime, err := drive(assertion.NewJSONLSink(io.Discard, 4096))
	if err != nil {
		return "", fmt.Errorf("jsonl sink: %w", err)
	}

	collector := export.NewCollector(0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: collector.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	httpSink, err := export.NewHTTPSink(export.HTTPSinkConfig{
		BaseURL:    "http://" + ln.Addr().String(),
		QueueDepth: 4096,
		BatchMax:   512,
	})
	if err != nil {
		return "", err
	}
	httpTime, err := drive(httpSink)
	if err != nil {
		return "", fmt.Errorf("http sink: %w", err)
	}
	if got := collector.TotalFired(); got != n {
		return "", fmt.Errorf("collector ingested %d of %d violations", got, n)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Sink throughput, %d violations (single producer):\n", n)
	fmt.Fprintf(&b, "  %-22s %10s %14s\n", "backend", "wall", "violations/s")
	row := func(name string, d time.Duration) {
		fmt.Fprintf(&b, "  %-22s %10s %14.0f\n", name, d.Round(time.Millisecond), float64(n)/d.Seconds())
	}
	row("jsonl (io.Discard)", jsonlTime)
	row("http (loopback)", httpTime)
	fmt.Fprintf(&b, "  http path: %d batches, %d retries, %d dropped, %.1fx jsonl wall time\n",
		httpSink.Batches(), httpSink.Retries(), httpSink.Dropped(),
		float64(httpTime)/float64(jsonlTime))
	return b.String(), nil
}

// renderFanInBench measures collector-side fan-in: many concurrent edge
// sources pushing decoded batches straight into Ingest, against a
// single-recorder collector and a sharded one. It is the contention the
// -shards flag of omg-server exists to remove — every source funnelling
// into one ring mutex versus sources spread across per-shard recorders —
// so the two rows quantify what sharding buys on this host. Ingested
// counts are verified, so the benchmark doubles as a correctness check.
func renderFanInBench(quick bool) (string, error) {
	batchesPerSource := 2000
	if quick {
		batchesPerSource = 200
	}
	const sources, perBatch = 8, 64
	total := sources * batchesPerSource * perBatch

	drive := func(shards int) (time.Duration, error) {
		c := export.NewCollectorConfig(export.CollectorConfig{Shards: shards})
		defer c.Close()
		start := time.Now()
		var wg sync.WaitGroup
		for s := 0; s < sources; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				source := fmt.Sprintf("edge-%02d", s)
				batch := export.Batch{Version: export.WireVersion, Source: source,
					Violations: make([]assertion.Violation, perBatch)}
				for i := range batch.Violations {
					batch.Violations[i] = assertion.Violation{
						Assertion: "bench-assert", Stream: source, SampleIndex: i, Severity: 1,
					}
				}
				for bi := 0; bi < batchesPerSource; bi++ {
					batch.Seq = uint64(bi + 1)
					c.Ingest(batch)
				}
			}(s)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if got := c.TotalFired(); got != total {
			return 0, fmt.Errorf("%d-shard collector ingested %d of %d violations", shards, got, total)
		}
		return elapsed, nil
	}

	singleTime, err := drive(1)
	if err != nil {
		return "", err
	}
	shards := runtime.GOMAXPROCS(0)
	if shards < 8 {
		shards = 8
	}
	shardedTime, err := drive(shards)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Collector fan-in, %d violations from %d concurrent sources:\n", total, sources)
	fmt.Fprintf(&b, "  %-22s %10s %14s\n", "collector", "wall", "violations/s")
	row := func(name string, d time.Duration) {
		fmt.Fprintf(&b, "  %-22s %10s %14.0f\n", name, d.Round(time.Millisecond), float64(total)/d.Seconds())
	}
	row("1 shard", singleTime)
	row(fmt.Sprintf("%d shards", shards), shardedTime)
	fmt.Fprintf(&b, "  sharded ingest: %.2fx the single-recorder throughput\n",
		float64(singleTime)/float64(shardedTime))
	return b.String(), nil
}
