package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"omg/internal/assertion"
	"omg/internal/export"
)

// renderSinkBench measures the violation export path beside the local
// baseline so the network hop shows up in the perf trajectory: the same
// violation stream is pushed through a JSONLSink writing to io.Discard
// and through an HTTPSink delivering to a loopback Collector, and both
// are timed end-to-end (Record through Flush). The collector's ingested
// count is checked against the sent count, so the benchmark doubles as a
// delivery smoke test.
func renderSinkBench(quick bool) (string, error) {
	n := 200000
	if quick {
		n = 20000
	}
	violations := make([]assertion.Violation, n)
	for i := range violations {
		violations[i] = assertion.Violation{
			Assertion:   "bench-assert",
			Stream:      fmt.Sprintf("cam-%02d", i%8),
			SampleIndex: i,
			Time:        float64(i) / 30,
			Severity:    1 + float64(i%5),
		}
	}

	drive := func(s assertion.Sink) (time.Duration, error) {
		start := time.Now()
		for _, v := range violations {
			if err := s.Record(v); err != nil {
				return 0, err
			}
		}
		if err := s.Flush(); err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		return elapsed, s.Close()
	}

	jsonlTime, err := drive(assertion.NewJSONLSink(io.Discard, 4096))
	if err != nil {
		return "", fmt.Errorf("jsonl sink: %w", err)
	}

	collector := export.NewCollector(0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: collector.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	httpSink, err := export.NewHTTPSink(export.HTTPSinkConfig{
		BaseURL:    "http://" + ln.Addr().String(),
		QueueDepth: 4096,
		BatchMax:   512,
	})
	if err != nil {
		return "", err
	}
	httpTime, err := drive(httpSink)
	if err != nil {
		return "", fmt.Errorf("http sink: %w", err)
	}
	if got := collector.Recorder().TotalFired(); got != n {
		return "", fmt.Errorf("collector ingested %d of %d violations", got, n)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Sink throughput, %d violations (single producer):\n", n)
	fmt.Fprintf(&b, "  %-22s %10s %14s\n", "backend", "wall", "violations/s")
	row := func(name string, d time.Duration) {
		fmt.Fprintf(&b, "  %-22s %10s %14.0f\n", name, d.Round(time.Millisecond), float64(n)/d.Seconds())
	}
	row("jsonl (io.Discard)", jsonlTime)
	row("http (loopback)", httpTime)
	fmt.Fprintf(&b, "  http path: %d batches, %d retries, %d dropped, %.1fx jsonl wall time\n",
		httpSink.Batches(), httpSink.Retries(), httpSink.Dropped(),
		float64(httpTime)/float64(jsonlTime))
	return b.String(), nil
}
