package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"omg/internal/assertion"
	"omg/internal/export"
)

// This file prices the PR-9 wire-codec seam: the same violation stream
// ships through HTTPSinks on the JSON and binary wires to a live loopback
// collector (interleaved repetitions, best run kept), so BENCH_9.json
// records the e2e ingest throughput the codec actually buys — plus the
// decode microbenchmark (ns/op and allocs/op per codec) and the bytes one
// representative batch spends on the wire with and without compression.

// benchWireRow is one codec's e2e ingest measurement.
type benchWireRow struct {
	Codec            string  `json:"codec"`
	WallMs           float64 `json:"wall_ms"`
	ViolationsPerSec float64 `json:"violations_per_sec"`
	Batches          int64   `json:"batches"`
}

// benchWireDecode is one codec's decode microbenchmark over a
// representative 256-violation batch.
type benchWireDecode struct {
	Codec       string  `json:"codec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BatchBytes  int     `json:"batch_bytes"`
}

// benchWireReport is the machine-readable shape written to BENCH_9.json.
type benchWireReport struct {
	Bench      string `json:"bench"`
	Quick      bool   `json:"quick"`
	Violations int    `json:"violations"`
	BatchMax   int    `json:"batch_max"`
	Senders    int    `json:"senders"`

	Ingest            []benchWireRow    `json:"ingest"`
	BinarySpeedupX    float64           `json:"binary_speedup_x"`
	Decode            []benchWireDecode `json:"decode"`
	CompressionRatioX float64           `json:"compression_ratio_x"`
}

// wireBenchViolations builds the shared violation stream: a realistic
// shape (few assertion and stream names, monotonic indices, noisy floats)
// rather than a compressor's best case.
func wireBenchViolations(n int) []assertion.Violation {
	vs := make([]assertion.Violation, n)
	names := []string{"lights", "flicker", "agree", "ocr"}
	for i := range vs {
		vs[i] = assertion.Violation{
			Assertion:        names[i%len(names)],
			Stream:           fmt.Sprintf("cam-%02d", i%8),
			SampleIndex:      i,
			Time:             float64(i) / 30,
			Severity:         1 + float64(i%5) + float64(i%7)/10,
			ObservedUnixNano: 1753800000_000000000 + int64(i)*33_366_700,
		}
	}
	return vs
}

// renderWireBench races the wire codecs e2e and writes outPath
// (machine-readable; "" skips the file).
func renderWireBench(quick bool, outPath string) (string, error) {
	n := 400_000
	reps := 3
	if quick {
		n = 40_000
		reps = 2
	}
	const senders, batchMax = 4, 512
	violations := wireBenchViolations(n)

	// drive ships the whole stream through `senders` concurrent HTTPSinks
	// on the named wire to one live collector, and returns the wall time
	// from first Record to last Flush. Delivery is verified, so the race
	// doubles as a smoke test that both codecs carry the stream intact.
	drive := func(wire string, compress bool) (time.Duration, int64, error) {
		collector := export.NewCollectorConfig(export.CollectorConfig{Shards: senders})
		defer collector.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, 0, err
		}
		srv := &http.Server{Handler: collector.Handler()}
		go srv.Serve(ln)
		defer srv.Close()

		sinks := make([]*export.HTTPSink, senders)
		for i := range sinks {
			if sinks[i], err = export.NewHTTPSink(export.HTTPSinkConfig{
				BaseURL:    "http://" + ln.Addr().String(),
				Source:     fmt.Sprintf("bench-edge-%02d", i),
				QueueDepth: 4096,
				BatchMax:   batchMax,
				Wire:       wire,
				Compress:   compress,
			}); err != nil {
				return 0, 0, err
			}
		}
		per := n / senders
		start := time.Now()
		var wg sync.WaitGroup
		errc := make(chan error, senders)
		for i, s := range sinks {
			wg.Add(1)
			go func(i int, s *export.HTTPSink) {
				defer wg.Done()
				for _, v := range violations[i*per : (i+1)*per] {
					if err := s.Record(v); err != nil {
						errc <- err
						return
					}
				}
				errc <- s.Close()
			}(i, s)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errc)
		for err := range errc {
			if err != nil {
				return 0, 0, fmt.Errorf("%s sender: %w", wire, err)
			}
		}
		var batches int64
		for _, s := range sinks {
			st := s.Stats()
			if st.WireFellBack {
				return 0, 0, fmt.Errorf("%s sender fell back to json against a codec-capable collector", wire)
			}
			batches += st.Batches
		}
		if got, want := collector.TotalFired(), per*senders; got != want {
			return 0, 0, fmt.Errorf("%s wire: collector ingested %d of %d violations", wire, got, want)
		}
		return elapsed, batches, nil
	}

	rep := benchWireReport{Bench: "wire", Quick: quick, Violations: n, BatchMax: batchMax, Senders: senders}
	// Interleaved repetitions, best (shortest) run kept, so scheduler
	// noise cancels instead of landing on one codec.
	best := map[string]benchWireRow{}
	for r := 0; r < reps; r++ {
		for _, w := range []struct {
			name     string
			wire     string
			compress bool
		}{
			{"json", export.CodecJSON, false},
			{"binary", export.CodecBinary, false},
			{"binary+deflate", export.CodecBinary, true},
		} {
			elapsed, batches, err := drive(w.wire, w.compress)
			if err != nil {
				return "", err
			}
			row, seen := best[w.name]
			if !seen || elapsed < time.Duration(row.WallMs*float64(time.Millisecond)) {
				best[w.name] = benchWireRow{
					Codec:            w.name,
					WallMs:           float64(elapsed.Nanoseconds()) / 1e6,
					ViolationsPerSec: float64(n) / elapsed.Seconds(),
					Batches:          batches,
				}
			}
		}
	}
	order := []string{"json", "binary", "binary+deflate"}
	for _, name := range order {
		rep.Ingest = append(rep.Ingest, best[name])
	}
	rep.BinarySpeedupX = best["binary"].ViolationsPerSec / best["json"].ViolationsPerSec

	// Decode microbenchmark: one representative full batch per codec,
	// decoded steady-state (pooled decoder and intern table warm).
	decodeBatch := export.Batch{Version: export.WireVersion, Source: "bench-edge-00", Seq: 1,
		Violations: violations[:256]}
	decN := 20_000
	if quick {
		decN = 2_000
	}
	var frameBytes = map[string]int{}
	for _, w := range []struct {
		name  string
		codec export.BatchCodec
	}{
		{"json", mustCodec(export.CodecJSON)},
		{"binary", &export.BinaryCodec{}},
		{"binary+deflate", &export.BinaryCodec{Compress: true}},
	} {
		frame, err := w.codec.AppendBatch(nil, decodeBatch)
		if err != nil {
			return "", err
		}
		frameBytes[w.name] = len(frame)
		for i := 0; i < 64; i++ { // warm pools and intern tables
			if _, err := w.codec.DecodeBatch(frame); err != nil {
				return "", fmt.Errorf("%s decode: %w", w.name, err)
			}
		}
		start := time.Now()
		for i := 0; i < decN; i++ {
			if _, err := w.codec.DecodeBatch(frame); err != nil {
				return "", err
			}
		}
		nsPerOp := float64(time.Since(start).Nanoseconds()) / float64(decN)
		allocs := testing.AllocsPerRun(1000, func() {
			if _, err := w.codec.DecodeBatch(frame); err != nil {
				panic(err)
			}
		})
		rep.Decode = append(rep.Decode, benchWireDecode{
			Codec: w.name, NsPerOp: nsPerOp, AllocsPerOp: allocs, BatchBytes: len(frame),
		})
	}
	rep.CompressionRatioX = float64(frameBytes["binary"]) / float64(frameBytes["binary+deflate"])

	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return "", fmt.Errorf("write %s: %w", outPath, err)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Wire codec race, %d violations through a live loopback collector (%d senders, batch %d):\n",
		n, senders, batchMax)
	fmt.Fprintf(&b, "  %-16s %10s %14s %8s\n", "wire", "wall", "violations/s", "batches")
	for _, name := range order {
		row := best[name]
		fmt.Fprintf(&b, "  %-16s %9.0fms %14.0f %8d\n", row.Codec, row.WallMs, row.ViolationsPerSec, row.Batches)
	}
	fmt.Fprintf(&b, "  binary ingest: %.2fx the JSON wire throughput\n\n", rep.BinarySpeedupX)
	fmt.Fprintf(&b, "Decode, one %d-violation batch (steady state):\n", len(decodeBatch.Violations))
	fmt.Fprintf(&b, "  %-16s %12s %12s %12s\n", "wire", "ns/op", "allocs/op", "bytes")
	for _, d := range rep.Decode {
		fmt.Fprintf(&b, "  %-16s %12.0f %12.1f %12d\n", d.Codec, d.NsPerOp, d.AllocsPerOp, d.BatchBytes)
	}
	fmt.Fprintf(&b, "  deflate: %.2fx fewer bytes on the wire than plain binary\n", rep.CompressionRatioX)
	if outPath != "" {
		fmt.Fprintf(&b, "  results written to %s\n", outPath)
	}
	return b.String(), nil
}

// mustCodec resolves a registered codec by name; the registry is
// populated at init, so a miss is a programming error.
func mustCodec(name string) export.BatchCodec {
	c, err := export.Codec(name)
	if err != nil {
		panic(err)
	}
	return c
}
