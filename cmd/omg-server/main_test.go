package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"omg/internal/assertion"
	"omg/internal/export"
)

// serverBin and monitorBin are built once by TestMain; empty when the go
// toolchain is unavailable (tests skip then).
var serverBin, monitorBin string

func TestMain(m *testing.M) {
	var cleanup string
	if _, err := exec.LookPath("go"); err == nil {
		dir, err := os.MkdirTemp("", "omg-server-e2e")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cleanup = dir
		for _, b := range []struct {
			bin  *string
			name string
			pkg  string
		}{
			{&serverBin, "omg-server", "."},
			{&monitorBin, "omg-monitor", "omg/cmd/omg-monitor"},
		} {
			path := filepath.Join(dir, b.name)
			if out, err := exec.Command("go", "build", "-o", path, b.pkg).CombinedOutput(); err != nil {
				os.RemoveAll(dir)
				fmt.Fprintf(os.Stderr, "building %s: %v\n%s", b.pkg, err, out)
				os.Exit(1)
			}
			*b.bin = path
		}
	}
	code := m.Run()
	if cleanup != "" {
		os.RemoveAll(cleanup)
	}
	os.Exit(code)
}

func needBinaries(t *testing.T) {
	t.Helper()
	if serverBin == "" {
		t.Skip("go toolchain unavailable; cannot build the binaries")
	}
}

// startServer launches omg-server on a free loopback port and returns its
// base URL plus the running command. The caller owns shutdown.
func startServer(t *testing.T, extraArgs ...string) (string, *exec.Cmd) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(serverBin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The startup handshake: the first stdout line names the bound port.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("omg-server printed no listening line")
	}
	m := regexp.MustCompile(`listening on (\S+)`).FindStringSubmatch(sc.Text())
	if m == nil {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("unexpected startup line %q", sc.Text())
	}
	baseURL := "http://" + m[1]
	// Drain the rest of stdout so the server never blocks on the pipe.
	go func() {
		for sc.Scan() {
		}
	}()
	waitHealthy(t, baseURL)
	return baseURL, cmd
}

func waitHealthy(t *testing.T, baseURL string) {
	t.Helper()
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", baseURL)
}

// stopServer delivers SIGTERM and waits for a clean exit.
func stopServer(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("omg-server exited uncleanly: %v", err)
	}
}

func getSummary(t *testing.T, baseURL string) export.SummaryResponse {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sum export.SummaryResponse
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	return sum
}

// recordedTotal parses omg-monitor's dashboard line.
func recordedTotal(t *testing.T, out []byte) int {
	t.Helper()
	m := regexp.MustCompile(`violations recorded: (\d+)`).FindSubmatch(out)
	if m == nil {
		t.Fatalf("summary line missing from output:\n%s", out)
	}
	n, _ := strconv.Atoi(string(m[1]))
	return n
}

func TestEndToEndHTTPExportDeliversExactlyOnce(t *testing.T) {
	needBinaries(t)
	snapPath := filepath.Join(t.TempDir(), "state.json")
	baseURL, server := startServer(t, "-snapshot", snapPath)

	out, err := exec.Command(monitorBin,
		"-frames", "300", "-streams", "2", "-workers", "2",
		"-sink", "http", "-export-url", baseURL, "-export-batch", "32",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("omg-monitor failed: %v\n%s", err, out)
	}
	want := recordedTotal(t, out)
	if want == 0 {
		t.Fatal("the night-street domain should fire violations")
	}
	if !regexp.MustCompile(`exported \d+ violations in \d+ batches`).Match(out) {
		t.Fatalf("export summary line missing:\n%s", out)
	}

	// The collector's view must match the sender's recorder exactly:
	// every violation delivered exactly once.
	sum := getSummary(t, baseURL)
	if sum.TotalFired != want {
		t.Fatalf("collector reports %d violations, sender recorded %d", sum.TotalFired, want)
	}
	if sum.Sources != 1 {
		t.Fatalf("collector saw %d sources, want 1", sum.Sources)
	}

	// A second monitor run from a fresh source accumulates on top; its
	// -log tees a complete local JSONL copy beside the export.
	teePath := filepath.Join(t.TempDir(), "tee.jsonl")
	out2, err := exec.Command(monitorBin,
		"-frames", "200", "-seed", "7",
		"-sink", "http", "-export-url", baseURL, "-log", teePath,
	).CombinedOutput()
	if err != nil {
		t.Fatalf("second omg-monitor failed: %v\n%s", err, out2)
	}
	run2 := recordedTotal(t, out2)
	if data, err := os.ReadFile(teePath); err != nil {
		t.Fatalf("-log tee beside -sink=http: %v", err)
	} else if got := strings.Count(string(data), "\n"); got != run2 {
		t.Fatalf("local tee holds %d violations, recorder counted %d", got, run2)
	}
	want += run2
	if sum = getSummary(t, baseURL); sum.TotalFired != want || sum.Sources != 2 {
		t.Fatalf("after second run: %d violations from %d sources, want %d from 2",
			sum.TotalFired, sum.Sources, want)
	}

	// A malformed ingest is rejected and counted; the counter must
	// survive the restart below (it persists in the snapshot).
	resp, err := http.Post(baseURL+"/v1/violations", "application/json", strings.NewReader(`{"version":42}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-version ingest = %s, want 400", resp.Status)
	}
	if sum = getSummary(t, baseURL); sum.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", sum.Rejected)
	}

	// SIGTERM persists a snapshot; a restarted server resumes from it.
	stopServer(t, server)
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("snapshot not persisted on SIGTERM: %v", err)
	}
	baseURL2, server2 := startServer(t, "-snapshot", snapPath)
	defer stopServer(t, server2)
	if sum = getSummary(t, baseURL2); sum.TotalFired != want || sum.Sources != 2 {
		t.Fatalf("restarted collector reports %d violations from %d sources, want %d from 2",
			sum.TotalFired, sum.Sources, want)
	}
	if sum.Rejected != 1 {
		t.Fatalf("rejected counter reset across restart: %d, want 1", sum.Rejected)
	}
	// The Prometheus view agrees: metric continuity across restarts.
	metrics := getMetrics(t, baseURL2)
	if !strings.Contains(metrics, "omg_collector_rejected_requests_total 1") {
		t.Fatalf("metrics lost the rejected counter across restart:\n%s", metrics)
	}
}

func getMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func violation(name, stream string, i int) assertion.Violation {
	return assertion.Violation{Assertion: name, Stream: stream, SampleIndex: i, Severity: 1}
}

// postWireBatch ships one hand-rolled wire batch to a running server.
func postWireBatch(t *testing.T, baseURL string, b export.Batch) {
	t.Helper()
	body, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/violations", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest returned %s", resp.Status)
	}
}

func TestEndToEndShardedTailAndRetention(t *testing.T) {
	needBinaries(t)
	baseURL, server := startServer(t,
		"-shards", "4", "-retain-per-assertion", "8", "-compact-every", "50ms")
	defer stopServer(t, server)

	// Subscribe to the live tail before anything ingests.
	req, err := http.NewRequest(http.MethodGet, baseURL+"/v1/violations/tail?assertion=tail-me", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("tail Content-Type = %q", ct)
	}
	// Wait for the subscription to register before publishing.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(getMetrics(t, baseURL), "omg_collector_tail_clients 1") {
		if time.Now().After(deadline) {
			t.Fatal("tail client never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Ingest from several sources: 30 violations of one noisy assertion
	// (which retention will cut down to <= 8) and one tail-me violation
	// the SSE subscriber must see live.
	for src := 0; src < 3; src++ {
		b := export.Batch{Version: export.WireVersion, Source: fmt.Sprintf("edge-%02d", src), Seq: 1}
		for i := 0; i < 10; i++ {
			b.Violations = append(b.Violations, violation("noisy", "cam", i))
		}
		postWireBatch(t, baseURL, b)
	}
	postWireBatch(t, baseURL, export.Batch{
		Version: export.WireVersion, Source: "edge-99", Seq: 1,
		Violations: []assertion.Violation{violation("tail-me", "cam-9", 0)},
	})

	// The tail delivers the matching violation as an SSE event.
	sc := bufio.NewScanner(resp.Body)
	gotEvent := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "data: ") && strings.Contains(line, "tail-me") {
				gotEvent <- line
				return
			}
		}
	}()
	select {
	case line := <-gotEvent:
		if !strings.Contains(line, `"assertion":"tail-me"`) {
			t.Fatalf("unexpected tail event %q", line)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("tail never delivered the violation")
	}

	// Retention compacts the noisy assertion down and counts evictions.
	deadline = time.Now().Add(10 * time.Second)
	for {
		metrics := getMetrics(t, baseURL)
		m := regexp.MustCompile(`omg_collector_retention_evictions_total (\d+)`).FindStringSubmatch(metrics)
		if m != nil {
			if n, _ := strconv.Atoi(m[1]); n > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("retention never evicted; metrics:\n%s", metrics)
		}
		time.Sleep(25 * time.Millisecond)
	}
	sum := getSummary(t, baseURL)
	if sum.Shards != 4 {
		t.Fatalf("summary shards = %d, want 4", sum.Shards)
	}
	if sum.TotalFired != 31 {
		t.Fatalf("TotalFired = %d, want 31 (stats survive retention)", sum.TotalFired)
	}
	if sum.RetentionEvicted == 0 {
		t.Fatal("summary reports no retention evictions")
	}
}

func TestEndToEndPeriodicSnapshotSurvivesKill(t *testing.T) {
	needBinaries(t)
	snapPath := filepath.Join(t.TempDir(), "state.json")
	baseURL, server := startServer(t, "-snapshot", snapPath, "-snapshot-every", "50ms")

	postWireBatch(t, baseURL, export.Batch{
		Version: export.WireVersion, Source: "edge-01", Seq: 1,
		Violations: []assertion.Violation{violation("a", "cam-0", 0), violation("a", "cam-0", 1)},
	})
	// The periodic snapshotter must persist without any shutdown signal.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s, err := export.ReadSnapshotFile(snapPath); err == nil && s.Recorder.TotalFired() == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic snapshot never captured the ingested state")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// SIGKILL: no shutdown hook runs, yet a restart resumes from the
	// periodic snapshot — including the dedup mark for edge-01 seq 1.
	server.Process.Kill()
	server.Wait()
	baseURL2, server2 := startServer(t, "-snapshot", snapPath)
	defer stopServer(t, server2)
	if sum := getSummary(t, baseURL2); sum.TotalFired != 2 {
		t.Fatalf("restart after kill reports %d violations, want 2", sum.TotalFired)
	}
}

// getRaw returns an endpoint's exact response bytes, for byte-level
// equality across a crash/restart.
func getRaw(t *testing.T, baseURL, path string) []byte {
	t.Helper()
	resp, err := http.Get(baseURL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s returned %s: %s", path, resp.Status, body)
	}
	return body
}

func TestEndToEndDiskStoreCrashRecovery(t *testing.T) {
	needBinaries(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	diskArgs := []string{"-store", "disk", "-data-dir", dataDir, "-shards", "2"}
	baseURL, server := startServer(t, diskArgs...)

	for seq := 1; seq <= 4; seq++ {
		postWireBatch(t, baseURL, export.Batch{
			Version: export.WireVersion, Source: "edge-01", Seq: uint64(seq),
			Violations: []assertion.Violation{
				violation("lights", "cam-0", seq),
				violation("flicker", "cam-1", seq),
			},
		})
	}
	postWireBatch(t, baseURL, export.Batch{
		Version: export.WireVersion, Source: "edge-02", Seq: 1,
		Violations: []assertion.Violation{violation("lights", "cam-2", 0)},
	})
	// A duplicate ingest: the dedup mark must also survive the crash.
	postWireBatch(t, baseURL, export.Batch{Version: export.WireVersion, Source: "edge-01", Seq: 2})

	wantSummary := getRaw(t, baseURL, "/v1/summary")
	wantQuery := getRaw(t, baseURL, "/v1/violations/query")
	wantByAssertion := getRaw(t, baseURL, "/v1/violations/query?assertion=lights&limit=3")
	if !bytes.Contains(wantSummary, []byte(`"store":"disk"`)) {
		t.Fatalf("summary does not advertise the disk store: %s", wantSummary)
	}

	// SIGKILL: no shutdown hook, no checkpoint, no fsync — recovery must
	// come entirely from the segment files and the dedup-marks WAL.
	server.Process.Kill()
	server.Wait()

	baseURL2, server2 := startServer(t, diskArgs...)
	defer stopServer(t, server2)
	if got := getRaw(t, baseURL2, "/v1/summary"); !bytes.Equal(got, wantSummary) {
		t.Fatalf("summary changed across the crash:\n got %s\nwant %s", got, wantSummary)
	}
	if got := getRaw(t, baseURL2, "/v1/violations/query"); !bytes.Equal(got, wantQuery) {
		t.Fatalf("query changed across the crash:\n got %s\nwant %s", got, wantQuery)
	}
	if got := getRaw(t, baseURL2, "/v1/violations/query?assertion=lights&limit=3"); !bytes.Equal(got, wantByAssertion) {
		t.Fatalf("filtered query changed across the crash:\n got %s\nwant %s", got, wantByAssertion)
	}
	// Exactly-once still holds: the pre-crash duplicate stays deduplicated
	// and the next fresh sequence number applies.
	postWireBatch(t, baseURL2, export.Batch{Version: export.WireVersion, Source: "edge-01", Seq: 4})
	postWireBatch(t, baseURL2, export.Batch{
		Version: export.WireVersion, Source: "edge-01", Seq: 5,
		Violations: []assertion.Violation{violation("lights", "cam-0", 99)},
	})
	sum := getSummary(t, baseURL2)
	if sum.TotalFired != 10 {
		t.Fatalf("TotalFired after post-crash ingest = %d, want 10", sum.TotalFired)
	}
	if sum.DuplicateBatches != 2 {
		t.Fatalf("duplicate count after crash = %d, want 2", sum.DuplicateBatches)
	}
	metrics := getMetrics(t, baseURL2)
	if !regexp.MustCompile(`omg_collector_segments [1-9]`).MatchString(metrics) {
		t.Fatalf("metrics missing live segment gauge:\n%s", metrics)
	}
}

func TestEndToEndCollectorDownCountsDrops(t *testing.T) {
	needBinaries(t)
	// Nothing listens on this port: every batch must fail, and the
	// monitor must exit non-zero reporting exactly how much it lost.
	out, err := exec.Command(monitorBin,
		"-frames", "200",
		"-sink", "http", "-export-url", "http://127.0.0.1:9", "-export-retries", "0",
	).CombinedOutput()
	if err == nil {
		t.Fatalf("expected non-zero exit with the collector down; output:\n%s", out)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("run error: %v", err)
	}
	m := regexp.MustCompile(`sink dropped (\d+) of (\d+) violations`).FindSubmatch(out)
	if m == nil {
		t.Fatalf("drop accounting missing from output:\n%s", out)
	}
	dropped, _ := strconv.Atoi(string(m[1]))
	recorded, _ := strconv.Atoi(string(m[2]))
	if recorded == 0 || dropped != recorded {
		t.Fatalf("dropped %d of %d recorded violations; with the collector down every violation must be counted",
			dropped, recorded)
	}
}

func TestEndToEndBadHTTPFlags(t *testing.T) {
	needBinaries(t)
	for _, args := range [][]string{
		{"-frames", "50", "-sink", "http"},                             // missing -export-url
		{"-frames", "50", "-sink", "http", "-export-url", "collector"}, // scheme-less URL
		{"-frames", "50", "-sink", "http", "-export-url", "http://x", "-export-retries", "-1"},
	} {
		if out, err := exec.Command(monitorBin, args...).CombinedOutput(); err == nil {
			t.Fatalf("%v: expected non-zero exit; output:\n%s", args, out)
		}
	}
}

func TestEndToEndMonitorRotateInterval(t *testing.T) {
	needBinaries(t)
	// Sanity: the new flag is accepted and plain size rotation still
	// works under it (age high enough not to trip).
	logPath := filepath.Join(t.TempDir(), "v.jsonl")
	out, err := exec.Command(monitorBin,
		"-frames", "500", "-log", logPath,
		"-sink", "rotate", "-rotate-bytes", "2048", "-rotate-interval", "1h",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("omg-monitor failed: %v\n%s", err, out)
	}
	if _, err := os.Stat(logPath + ".1"); err != nil {
		t.Fatalf("size rotation should still trip with -rotate-interval set: %v", err)
	}
	if !strings.Contains(string(out), "JSONL violation log written") {
		t.Fatalf("log line missing:\n%s", out)
	}
}
