package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"omg/internal/assertion"
	"omg/internal/export"
	"omg/internal/labelsvc"
)

// serverBin and monitorBin are built once by TestMain; empty when the go
// toolchain is unavailable (tests skip then).
var serverBin, monitorBin string

func TestMain(m *testing.M) {
	var cleanup string
	if _, err := exec.LookPath("go"); err == nil {
		dir, err := os.MkdirTemp("", "omg-server-e2e")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cleanup = dir
		for _, b := range []struct {
			bin  *string
			name string
			pkg  string
		}{
			{&serverBin, "omg-server", "."},
			{&monitorBin, "omg-monitor", "omg/cmd/omg-monitor"},
		} {
			path := filepath.Join(dir, b.name)
			if out, err := exec.Command("go", "build", "-o", path, b.pkg).CombinedOutput(); err != nil {
				os.RemoveAll(dir)
				fmt.Fprintf(os.Stderr, "building %s: %v\n%s", b.pkg, err, out)
				os.Exit(1)
			}
			*b.bin = path
		}
	}
	code := m.Run()
	if cleanup != "" {
		os.RemoveAll(cleanup)
	}
	os.Exit(code)
}

func needBinaries(t *testing.T) {
	t.Helper()
	if serverBin == "" {
		t.Skip("go toolchain unavailable; cannot build the binaries")
	}
}

// startServer launches omg-server on a free loopback port and returns its
// base URL plus the running command. The caller owns shutdown.
func startServer(t *testing.T, extraArgs ...string) (string, *exec.Cmd) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(serverBin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The startup handshake: the first stdout line names the bound port.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("omg-server printed no listening line")
	}
	m := regexp.MustCompile(`listening on (\S+)`).FindStringSubmatch(sc.Text())
	if m == nil {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("unexpected startup line %q", sc.Text())
	}
	baseURL := "http://" + m[1]
	// Drain the rest of stdout so the server never blocks on the pipe.
	go func() {
		for sc.Scan() {
		}
	}()
	waitHealthy(t, baseURL)
	return baseURL, cmd
}

func waitHealthy(t *testing.T, baseURL string) {
	t.Helper()
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", baseURL)
}

// stopServer delivers SIGTERM and waits for a clean exit.
func stopServer(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("omg-server exited uncleanly: %v", err)
	}
}

func getSummary(t *testing.T, baseURL string) export.SummaryResponse {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sum export.SummaryResponse
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	return sum
}

// recordedTotal parses omg-monitor's dashboard line.
func recordedTotal(t *testing.T, out []byte) int {
	t.Helper()
	m := regexp.MustCompile(`violations recorded: (\d+)`).FindSubmatch(out)
	if m == nil {
		t.Fatalf("summary line missing from output:\n%s", out)
	}
	n, _ := strconv.Atoi(string(m[1]))
	return n
}

func TestEndToEndHTTPExportDeliversExactlyOnce(t *testing.T) {
	needBinaries(t)
	snapPath := filepath.Join(t.TempDir(), "state.json")
	baseURL, server := startServer(t, "-snapshot", snapPath)

	out, err := exec.Command(monitorBin,
		"-frames", "300", "-streams", "2", "-workers", "2",
		"-sink", "http", "-export-url", baseURL, "-export-batch", "32",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("omg-monitor failed: %v\n%s", err, out)
	}
	want := recordedTotal(t, out)
	if want == 0 {
		t.Fatal("the night-street domain should fire violations")
	}
	if !regexp.MustCompile(`exported \d+ violations in \d+ batches`).Match(out) {
		t.Fatalf("export summary line missing:\n%s", out)
	}

	// The collector's view must match the sender's recorder exactly:
	// every violation delivered exactly once.
	sum := getSummary(t, baseURL)
	if sum.TotalFired != want {
		t.Fatalf("collector reports %d violations, sender recorded %d", sum.TotalFired, want)
	}
	if sum.Sources != 1 {
		t.Fatalf("collector saw %d sources, want 1", sum.Sources)
	}

	// A second monitor run from a fresh source accumulates on top; its
	// -log tees a complete local JSONL copy beside the export.
	teePath := filepath.Join(t.TempDir(), "tee.jsonl")
	out2, err := exec.Command(monitorBin,
		"-frames", "200", "-seed", "7",
		"-sink", "http", "-export-url", baseURL, "-log", teePath,
	).CombinedOutput()
	if err != nil {
		t.Fatalf("second omg-monitor failed: %v\n%s", err, out2)
	}
	run2 := recordedTotal(t, out2)
	if data, err := os.ReadFile(teePath); err != nil {
		t.Fatalf("-log tee beside -sink=http: %v", err)
	} else if got := strings.Count(string(data), "\n"); got != run2 {
		t.Fatalf("local tee holds %d violations, recorder counted %d", got, run2)
	}
	want += run2
	if sum = getSummary(t, baseURL); sum.TotalFired != want || sum.Sources != 2 {
		t.Fatalf("after second run: %d violations from %d sources, want %d from 2",
			sum.TotalFired, sum.Sources, want)
	}

	// A malformed ingest is rejected and counted; the counter must
	// survive the restart below (it persists in the snapshot).
	resp, err := http.Post(baseURL+"/v1/violations", "application/json", strings.NewReader(`{"version":42}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-version ingest = %s, want 400", resp.Status)
	}
	if sum = getSummary(t, baseURL); sum.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", sum.Rejected)
	}

	// SIGTERM persists a snapshot; a restarted server resumes from it.
	stopServer(t, server)
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("snapshot not persisted on SIGTERM: %v", err)
	}
	baseURL2, server2 := startServer(t, "-snapshot", snapPath)
	defer stopServer(t, server2)
	if sum = getSummary(t, baseURL2); sum.TotalFired != want || sum.Sources != 2 {
		t.Fatalf("restarted collector reports %d violations from %d sources, want %d from 2",
			sum.TotalFired, sum.Sources, want)
	}
	if sum.Rejected != 1 {
		t.Fatalf("rejected counter reset across restart: %d, want 1", sum.Rejected)
	}
	// The Prometheus view agrees: metric continuity across restarts.
	metrics := getMetrics(t, baseURL2)
	if !strings.Contains(metrics, "omg_collector_rejected_requests_total 1") {
		t.Fatalf("metrics lost the rejected counter across restart:\n%s", metrics)
	}
}

func getMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func violation(name, stream string, i int) assertion.Violation {
	return assertion.Violation{Assertion: name, Stream: stream, SampleIndex: i, Severity: 1}
}

// postWireBatch ships one hand-rolled wire batch to a running server.
func postWireBatch(t *testing.T, baseURL string, b export.Batch) {
	t.Helper()
	body, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/violations", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest returned %s", resp.Status)
	}
}

func TestEndToEndShardedTailAndRetention(t *testing.T) {
	needBinaries(t)
	baseURL, server := startServer(t,
		"-shards", "4", "-retain-per-assertion", "8", "-compact-every", "50ms")
	defer stopServer(t, server)

	// Subscribe to the live tail before anything ingests.
	req, err := http.NewRequest(http.MethodGet, baseURL+"/v1/violations/tail?assertion=tail-me", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("tail Content-Type = %q", ct)
	}
	// Wait for the subscription to register before publishing.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(getMetrics(t, baseURL), "omg_collector_tail_clients 1") {
		if time.Now().After(deadline) {
			t.Fatal("tail client never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Ingest from several sources: 30 violations of one noisy assertion
	// (which retention will cut down to <= 8) and one tail-me violation
	// the SSE subscriber must see live.
	for src := 0; src < 3; src++ {
		b := export.Batch{Version: export.WireVersion, Source: fmt.Sprintf("edge-%02d", src), Seq: 1}
		for i := 0; i < 10; i++ {
			b.Violations = append(b.Violations, violation("noisy", "cam", i))
		}
		postWireBatch(t, baseURL, b)
	}
	postWireBatch(t, baseURL, export.Batch{
		Version: export.WireVersion, Source: "edge-99", Seq: 1,
		Violations: []assertion.Violation{violation("tail-me", "cam-9", 0)},
	})

	// The tail delivers the matching violation as an SSE event.
	sc := bufio.NewScanner(resp.Body)
	gotEvent := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "data: ") && strings.Contains(line, "tail-me") {
				gotEvent <- line
				return
			}
		}
	}()
	select {
	case line := <-gotEvent:
		if !strings.Contains(line, `"assertion":"tail-me"`) {
			t.Fatalf("unexpected tail event %q", line)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("tail never delivered the violation")
	}

	// Retention compacts the noisy assertion down and counts evictions.
	deadline = time.Now().Add(10 * time.Second)
	for {
		metrics := getMetrics(t, baseURL)
		m := regexp.MustCompile(`omg_collector_retention_evictions_total (\d+)`).FindStringSubmatch(metrics)
		if m != nil {
			if n, _ := strconv.Atoi(m[1]); n > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("retention never evicted; metrics:\n%s", metrics)
		}
		time.Sleep(25 * time.Millisecond)
	}
	sum := getSummary(t, baseURL)
	if sum.Shards != 4 {
		t.Fatalf("summary shards = %d, want 4", sum.Shards)
	}
	if sum.TotalFired != 31 {
		t.Fatalf("TotalFired = %d, want 31 (stats survive retention)", sum.TotalFired)
	}
	if sum.RetentionEvicted == 0 {
		t.Fatal("summary reports no retention evictions")
	}
}

func TestEndToEndPeriodicSnapshotSurvivesKill(t *testing.T) {
	needBinaries(t)
	snapPath := filepath.Join(t.TempDir(), "state.json")
	baseURL, server := startServer(t, "-snapshot", snapPath, "-snapshot-every", "50ms")

	postWireBatch(t, baseURL, export.Batch{
		Version: export.WireVersion, Source: "edge-01", Seq: 1,
		Violations: []assertion.Violation{violation("a", "cam-0", 0), violation("a", "cam-0", 1)},
	})
	// The periodic snapshotter must persist without any shutdown signal.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s, err := export.ReadSnapshotFile(snapPath); err == nil && s.Recorder.TotalFired() == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic snapshot never captured the ingested state")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// SIGKILL: no shutdown hook runs, yet a restart resumes from the
	// periodic snapshot — including the dedup mark for edge-01 seq 1.
	server.Process.Kill()
	server.Wait()
	baseURL2, server2 := startServer(t, "-snapshot", snapPath)
	defer stopServer(t, server2)
	if sum := getSummary(t, baseURL2); sum.TotalFired != 2 {
		t.Fatalf("restart after kill reports %d violations, want 2", sum.TotalFired)
	}
}

// getRaw returns an endpoint's exact response bytes, for byte-level
// equality across a crash/restart.
func getRaw(t *testing.T, baseURL, path string) []byte {
	t.Helper()
	resp, err := http.Get(baseURL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s returned %s: %s", path, resp.Status, body)
	}
	return body
}

func TestEndToEndDiskStoreCrashRecovery(t *testing.T) {
	needBinaries(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	diskArgs := []string{"-store", "disk", "-data-dir", dataDir, "-shards", "2"}
	baseURL, server := startServer(t, diskArgs...)

	for seq := 1; seq <= 4; seq++ {
		postWireBatch(t, baseURL, export.Batch{
			Version: export.WireVersion, Source: "edge-01", Seq: uint64(seq),
			Violations: []assertion.Violation{
				violation("lights", "cam-0", seq),
				violation("flicker", "cam-1", seq),
			},
		})
	}
	postWireBatch(t, baseURL, export.Batch{
		Version: export.WireVersion, Source: "edge-02", Seq: 1,
		Violations: []assertion.Violation{violation("lights", "cam-2", 0)},
	})
	// A duplicate ingest: the dedup mark must also survive the crash.
	postWireBatch(t, baseURL, export.Batch{Version: export.WireVersion, Source: "edge-01", Seq: 2})

	wantSummary := getRaw(t, baseURL, "/v1/summary")
	wantQuery := getRaw(t, baseURL, "/v1/violations/query")
	wantByAssertion := getRaw(t, baseURL, "/v1/violations/query?assertion=lights&limit=3")
	if !bytes.Contains(wantSummary, []byte(`"store":"disk"`)) {
		t.Fatalf("summary does not advertise the disk store: %s", wantSummary)
	}

	// SIGKILL: no shutdown hook, no checkpoint, no fsync — recovery must
	// come entirely from the segment files and the dedup-marks WAL.
	server.Process.Kill()
	server.Wait()

	baseURL2, server2 := startServer(t, diskArgs...)
	defer stopServer(t, server2)
	if got := getRaw(t, baseURL2, "/v1/summary"); !bytes.Equal(got, wantSummary) {
		t.Fatalf("summary changed across the crash:\n got %s\nwant %s", got, wantSummary)
	}
	if got := getRaw(t, baseURL2, "/v1/violations/query"); !bytes.Equal(got, wantQuery) {
		t.Fatalf("query changed across the crash:\n got %s\nwant %s", got, wantQuery)
	}
	if got := getRaw(t, baseURL2, "/v1/violations/query?assertion=lights&limit=3"); !bytes.Equal(got, wantByAssertion) {
		t.Fatalf("filtered query changed across the crash:\n got %s\nwant %s", got, wantByAssertion)
	}
	// Exactly-once still holds: the pre-crash duplicate stays deduplicated
	// and the next fresh sequence number applies.
	postWireBatch(t, baseURL2, export.Batch{Version: export.WireVersion, Source: "edge-01", Seq: 4})
	postWireBatch(t, baseURL2, export.Batch{
		Version: export.WireVersion, Source: "edge-01", Seq: 5,
		Violations: []assertion.Violation{violation("lights", "cam-0", 99)},
	})
	sum := getSummary(t, baseURL2)
	if sum.TotalFired != 10 {
		t.Fatalf("TotalFired after post-crash ingest = %d, want 10", sum.TotalFired)
	}
	if sum.DuplicateBatches != 2 {
		t.Fatalf("duplicate count after crash = %d, want 2", sum.DuplicateBatches)
	}
	metrics := getMetrics(t, baseURL2)
	if !regexp.MustCompile(`omg_collector_segments [1-9]`).MatchString(metrics) {
		t.Fatalf("metrics missing live segment gauge:\n%s", metrics)
	}
}

// postCodecBatch ships one hand-rolled batch over an explicit wire codec
// and reports whether the collector deduplicated it.
func postCodecBatch(t *testing.T, baseURL string, codec export.BatchCodec, b export.Batch) bool {
	t.Helper()
	body, err := codec.AppendBatch(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/violations", codec.ContentType(), bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s ingest returned %s", codec.Name(), resp.Status)
	}
	var ack export.IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack.Duplicate
}

// normalizeIngestStamps blanks the collector-stamped ingest_unix values,
// which are the only wall-clock-dependent bytes in a query response, so
// two separate runs over the same logical fleet compare byte-for-byte.
var ingestStampRe = regexp.MustCompile(`"ingest_unix":\d+`)

func normalizeIngestStamps(b []byte) []byte {
	return ingestStampRe.ReplaceAll(b, []byte(`"ingest_unix":0`))
}

// mixedFleetBatches is the deterministic two-edge fleet both runs of
// TestEndToEndMixedWireFleet replay: edge-json and edge-bin each ship
// three sequenced batches.
func mixedFleetBatches() map[string][]export.Batch {
	fleet := map[string][]export.Batch{}
	for _, src := range []string{"edge-json", "edge-bin"} {
		for seq := 1; seq <= 3; seq++ {
			b := export.Batch{Version: export.WireVersion, Source: src, Seq: uint64(seq)}
			for i := 0; i < 4; i++ {
				v := violation([]string{"lights", "flicker"}[i%2], fmt.Sprintf("%s-cam-%d", src, i%2), seq*10+i)
				v.Time = float64(seq) + float64(i)/30
				v.Severity = float64(1 + i%3)
				v.ObservedUnixNano = 1753800000_000000000 + int64(seq*1000+i)
				b.Violations = append(b.Violations, v)
			}
			fleet[src] = append(fleet[src], b)
		}
	}
	return fleet
}

// TestEndToEndMixedWireFleet replays the same two-edge fleet twice
// against disk-backed collectors — once all-JSON, once with edge-bin on
// the binary wire (alternating compression) and its duplicates crossing
// codecs — and requires the summary, query and (source,seq) dedup state
// to match byte-for-byte. The mixed-wire collector is then SIGKILLed and
// must recover identically from its segment files, binary-ingested
// violations included.
func TestEndToEndMixedWireFleet(t *testing.T) {
	needBinaries(t)
	fleet := mixedFleetBatches()
	jsonCodec, err := export.Codec(export.CodecJSON)
	if err != nil {
		t.Fatal(err)
	}
	binPlain := &export.BinaryCodec{}
	binDeflate := &export.BinaryCodec{Compress: true}

	// ingest drives one full fleet replay: every batch in seq order, a
	// same-wire duplicate of edge-bin seq 2 and a cross-wire duplicate of
	// edge-json seq 1. pick chooses the codec per (source, seq) so the
	// baseline run can force everything onto JSON.
	ingest := func(baseURL string, pick func(src string, seq int) export.BatchCodec) {
		t.Helper()
		for _, src := range []string{"edge-json", "edge-bin"} {
			for _, b := range fleet[src] {
				if dup := postCodecBatch(t, baseURL, pick(src, int(b.Seq)), b); dup {
					t.Fatalf("fresh batch (%s, %d) reported duplicate", src, b.Seq)
				}
			}
		}
		if !postCodecBatch(t, baseURL, pick("edge-bin", 2), fleet["edge-bin"][1]) {
			t.Fatal("replayed (edge-bin, 2) not deduplicated")
		}
		// The cross-wire duplicate: ingested as JSON in the baseline, as
		// binary in the mixed run — dedup must be codec-blind.
		crossCodec := pick("edge-bin", 3)
		if !postCodecBatch(t, baseURL, crossCodec, fleet["edge-json"][0]) {
			t.Fatalf("(edge-json, 1) replayed over the %s wire not deduplicated", crossCodec.Name())
		}
	}

	// Baseline: the same fleet, every batch on the JSON wire.
	baseDir := filepath.Join(t.TempDir(), "base")
	baseURL, baseServer := startServer(t, "-store", "disk", "-data-dir", baseDir, "-shards", "2")
	ingest(baseURL, func(string, int) export.BatchCodec { return jsonCodec })
	wantSummary := normalizeIngestStamps(getRaw(t, baseURL, "/v1/summary"))
	wantQuery := normalizeIngestStamps(getRaw(t, baseURL, "/v1/violations/query"))
	wantFiltered := normalizeIngestStamps(getRaw(t, baseURL, "/v1/violations/query?assertion=flicker&stream=edge-bin-cam-1&limit=5"))
	stopServer(t, baseServer)

	// Mixed fleet: edge-bin ships binary (seq 2 compressed), edge-json
	// stays on JSON.
	mixDir := filepath.Join(t.TempDir(), "mixed")
	diskArgs := []string{"-store", "disk", "-data-dir", mixDir, "-shards", "2"}
	mixURL, mixServer := startServer(t, diskArgs...)
	ingest(mixURL, func(src string, seq int) export.BatchCodec {
		switch {
		case src == "edge-json":
			return jsonCodec
		case seq == 2:
			return binDeflate
		default:
			return binPlain
		}
	})
	gotSummary := getRaw(t, mixURL, "/v1/summary")
	gotQuery := getRaw(t, mixURL, "/v1/violations/query")
	gotFiltered := getRaw(t, mixURL, "/v1/violations/query?assertion=flicker&stream=edge-bin-cam-1&limit=5")
	if !bytes.Equal(normalizeIngestStamps(gotSummary), wantSummary) {
		t.Fatalf("mixed-wire summary diverges from the all-JSON fleet:\n got %s\nwant %s", gotSummary, wantSummary)
	}
	if !bytes.Equal(normalizeIngestStamps(gotQuery), wantQuery) {
		t.Fatalf("mixed-wire query diverges from the all-JSON fleet:\n got %s\nwant %s", gotQuery, wantQuery)
	}
	if !bytes.Equal(normalizeIngestStamps(gotFiltered), wantFiltered) {
		t.Fatalf("mixed-wire filtered query diverges:\n got %s\nwant %s", gotFiltered, wantFiltered)
	}
	// The decode histogram proves both codecs actually ran.
	metrics := getMetrics(t, mixURL)
	for _, m := range []string{
		`omg_collector_ingest_decode_seconds_count{codec="binary"} 5`,
		`omg_collector_ingest_decode_seconds_count{codec="json"} 3`,
	} {
		if !strings.Contains(metrics, m) {
			t.Fatalf("metrics missing %q:\n%s", m, metrics)
		}
	}

	// SIGKILL the mixed-wire collector: recovery replays the segment
	// files, so binary-ingested violations and cross-wire dedup marks must
	// come back byte-identical (no stamp normalization — same run).
	mixServer.Process.Kill()
	mixServer.Wait()
	mixURL2, mixServer2 := startServer(t, diskArgs...)
	defer stopServer(t, mixServer2)
	if got := getRaw(t, mixURL2, "/v1/summary"); !bytes.Equal(got, gotSummary) {
		t.Fatalf("summary changed across the crash:\n got %s\nwant %s", got, gotSummary)
	}
	if got := getRaw(t, mixURL2, "/v1/violations/query"); !bytes.Equal(got, gotQuery) {
		t.Fatalf("query changed across the crash:\n got %s\nwant %s", got, gotQuery)
	}
	// Exactly-once still holds post-crash, on both wires.
	if !postCodecBatch(t, mixURL2, binPlain, fleet["edge-bin"][2]) {
		t.Fatal("pre-crash (edge-bin, 3) accepted again after recovery")
	}
	if !postCodecBatch(t, mixURL2, jsonCodec, fleet["edge-json"][2]) {
		t.Fatal("pre-crash (edge-json, 3) accepted again after recovery")
	}
}

// TestEndToEndMonitorWireFleet runs real omg-monitor edges — one JSON,
// one binary+DEFLATE — against one collector, then a binary-wire edge
// against a JSON-only collector, which must fall back via 415 and still
// deliver exactly once.
func TestEndToEndMonitorWireFleet(t *testing.T) {
	needBinaries(t)
	baseURL, server := startServer(t)
	defer stopServer(t, server)

	want := 0
	for _, wireArgs := range [][]string{
		{"-wire", "json"},
		{"-wire", "binary", "-wire-compress"},
	} {
		args := append([]string{"-frames", "250", "-sink", "http", "-export-url", baseURL, "-export-batch", "32"}, wireArgs...)
		out, err := exec.Command(monitorBin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("omg-monitor %v failed: %v\n%s", wireArgs, err, out)
		}
		if bytes.Contains(out, []byte("fell back")) {
			t.Fatalf("%v fell back against a binary-capable collector:\n%s", wireArgs, out)
		}
		want += recordedTotal(t, out)
	}
	sum := getSummary(t, baseURL)
	if sum.TotalFired != want || sum.Sources != 2 {
		t.Fatalf("collector holds %d violations from %d sources, want %d from 2", sum.TotalFired, sum.Sources, want)
	}
	if !strings.Contains(getMetrics(t, baseURL), `omg_collector_ingest_decode_seconds_count{codec="binary"}`) {
		t.Fatal("binary edge never hit the binary decode path")
	}

	// A JSON-only collector (as an old deployment would be): the binary
	// edge's first frame draws a 415, the sink falls back to JSON and
	// every violation still lands exactly once.
	jsonURL, jsonServer := startServer(t, "-wire-accept", "json")
	defer stopServer(t, jsonServer)
	out, err := exec.Command(monitorBin,
		"-frames", "250", "-sink", "http", "-export-url", jsonURL, "-export-batch", "32",
		"-wire", "binary",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("omg-monitor against JSON-only collector failed: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("wire codec fell back to json")) {
		t.Fatalf("fallback line missing:\n%s", out)
	}
	if m := regexp.MustCompile(`\(\d+ retries, (\d+) dropped`).FindSubmatch(out); m == nil || string(m[1]) != "0" {
		t.Fatalf("fallback dropped violations:\n%s", out)
	}
	sum = getSummary(t, jsonURL)
	if want := recordedTotal(t, out); sum.TotalFired != want || sum.DuplicateBatches != 0 {
		t.Fatalf("after fallback: collector holds %d violations (%d duplicate batches), want %d and 0",
			sum.TotalFired, sum.DuplicateBatches, want)
	}
}

func TestEndToEndCollectorDownCountsDrops(t *testing.T) {
	needBinaries(t)
	// Nothing listens on this port: every batch must fail, and the
	// monitor must exit non-zero reporting exactly how much it lost.
	out, err := exec.Command(monitorBin,
		"-frames", "200",
		"-sink", "http", "-export-url", "http://127.0.0.1:9", "-export-retries", "0",
	).CombinedOutput()
	if err == nil {
		t.Fatalf("expected non-zero exit with the collector down; output:\n%s", out)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("run error: %v", err)
	}
	m := regexp.MustCompile(`sink dropped (\d+) of (\d+) violations`).FindSubmatch(out)
	if m == nil {
		t.Fatalf("drop accounting missing from output:\n%s", out)
	}
	dropped, _ := strconv.Atoi(string(m[1]))
	recorded, _ := strconv.Atoi(string(m[2]))
	if recorded == 0 || dropped != recorded {
		t.Fatalf("dropped %d of %d recorded violations; with the collector down every violation must be counted",
			dropped, recorded)
	}
}

func TestEndToEndBadHTTPFlags(t *testing.T) {
	needBinaries(t)
	for _, args := range [][]string{
		{"-frames", "50", "-sink", "http"},                             // missing -export-url
		{"-frames", "50", "-sink", "http", "-export-url", "collector"}, // scheme-less URL
		{"-frames", "50", "-sink", "http", "-export-url", "http://x", "-export-retries", "-1"},
	} {
		if out, err := exec.Command(monitorBin, args...).CombinedOutput(); err == nil {
			t.Fatalf("%v: expected non-zero exit; output:\n%s", args, out)
		}
	}
}

func TestEndToEndMonitorRotateInterval(t *testing.T) {
	needBinaries(t)
	// Sanity: the new flag is accepted and plain size rotation still
	// works under it (age high enough not to trip).
	logPath := filepath.Join(t.TempDir(), "v.jsonl")
	out, err := exec.Command(monitorBin,
		"-frames", "500", "-log", logPath,
		"-sink", "rotate", "-rotate-bytes", "2048", "-rotate-interval", "1h",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("omg-monitor failed: %v\n%s", err, out)
	}
	if _, err := os.Stat(logPath + ".1"); err != nil {
		t.Fatalf("size rotation should still trip with -rotate-interval set: %v", err)
	}
	if !strings.Contains(string(out), "JSONL violation log written") {
		t.Fatalf("log line missing:\n%s", out)
	}
}

// labelViolations builds a deterministic labeling pool for one stream:
// every sample fires "lights" (severity cycling 1..5) and even samples
// additionally fire the consistency-generated "track:flicker".
func labelViolations(stream string, n int) []assertion.Violation {
	var out []assertion.Violation
	for i := 0; i < n; i++ {
		out = append(out, assertion.Violation{Assertion: "lights", Stream: stream, SampleIndex: i, Severity: 1 + float64(i%5)})
		if i%2 == 0 {
			out = append(out, assertion.Violation{Assertion: "track:flicker", Stream: stream, SampleIndex: i, Severity: 2})
		}
	}
	return out
}

func pullLabels(t *testing.T, baseURL string, budget int, puller string) export.LabelsNextResponse {
	t.Helper()
	var out export.LabelsNextResponse
	body := getRaw(t, baseURL, fmt.Sprintf("/v1/labels/next?budget=%d&puller=%s", budget, puller))
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode labels batch: %v\n%s", err, body)
	}
	return out
}

func postFeedback(t *testing.T, baseURL string, req export.LabelsFeedbackRequest) export.LabelsFeedbackResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/labels/feedback", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback returned %s", resp.Status)
	}
	var out export.LabelsFeedbackResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func responseKeys(r export.LabelsNextResponse) []labelsvc.SampleKey {
	keys := make([]labelsvc.SampleKey, len(r.Candidates))
	for i, c := range r.Candidates {
		keys[i] = c.SampleKey
	}
	return keys
}

func batchKeys(b labelsvc.Batch) []labelsvc.SampleKey {
	keys := make([]labelsvc.SampleKey, len(b.Candidates))
	for i, c := range b.Candidates {
		keys[i] = c.SampleKey
	}
	return keys
}

// sliceSource adapts a fixed violation slice to labelsvc.ViolationSource,
// standing in for the collector when driving a reference service.
type sliceSource []assertion.Violation

func (s sliceSource) Violations() []assertion.Violation { return s }

// TestEndToEndLabelLoop drives the paper's active-learning loop over HTTP
// — two edge sources ingest, two pullers lease disjoint batches, labels
// post back — and holds the served selection to the exact trace an
// in-process labelsvc over the same pool and seed produces: the BAL round
// state behind /v1/labels/next is deterministic, not merely plausible.
func TestEndToEndLabelLoop(t *testing.T) {
	needBinaries(t)
	baseURL, server := startServer(t, "-label-seed", "42", "-label-budget", "4")
	defer stopServer(t, server)

	vs1 := labelViolations("cam-0", 10)
	vs2 := labelViolations("cam-1", 10)
	postWireBatch(t, baseURL, export.Batch{Version: export.WireVersion, Source: "edge-01", Seq: 1, Violations: vs1})
	postWireBatch(t, baseURL, export.Batch{Version: export.WireVersion, Source: "edge-02", Seq: 1, Violations: vs2})

	// The reference trace: same seed, same pool, same pull sequence.
	pool := append(append(sliceSource{}, vs1...), vs2...)
	ref, err := labelsvc.New(pool, labelsvc.Config{Seed: 42, DefaultBudget: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref.ObserveBatch("edge-01", vs1)
	ref.ObserveBatch("edge-02", vs2)

	refNext := func(budget int, puller string) labelsvc.Batch {
		t.Helper()
		b, err := ref.Next(budget, puller)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	got1 := pullLabels(t, baseURL, 4, "alice")
	want1 := refNext(4, "alice")
	if got1.Selector != "bal" || got1.Round != want1.Round || got1.Count != 4 {
		t.Fatalf("first pull: selector=%q round=%d count=%d, want bal/%d/4",
			got1.Selector, got1.Round, got1.Count, want1.Round)
	}
	if !reflect.DeepEqual(responseKeys(got1), batchKeys(want1)) {
		t.Fatalf("served batch diverges from the bandit reference trace:\n got %+v\nwant %+v",
			responseKeys(got1), batchKeys(want1))
	}
	for _, c := range got1.Candidates {
		if len(c.Severities) == 0 || c.TopAssertion == "" || c.LeaseUntilUnix == 0 {
			t.Fatalf("candidate missing features or lease: %+v", c)
		}
	}

	got2 := pullLabels(t, baseURL, 4, "bob")
	want2 := refNext(4, "bob")
	if !reflect.DeepEqual(responseKeys(got2), batchKeys(want2)) {
		t.Fatalf("second pull diverges from the reference trace:\n got %+v\nwant %+v",
			responseKeys(got2), batchKeys(want2))
	}
	seen := map[labelsvc.SampleKey]bool{}
	for _, k := range responseKeys(got1) {
		seen[k] = true
	}
	for _, k := range responseKeys(got2) {
		if seen[k] {
			t.Fatalf("sample %+v leased to both pullers", k)
		}
	}

	// Label alice's batch; the same feedback feeds the reference.
	fb := export.LabelsFeedbackRequest{Version: export.WireVersion}
	for _, c := range got1.Candidates {
		fb.Labels = append(fb.Labels, labelsvc.Feedback{SampleKey: c.SampleKey, Label: "error", ModelCorrect: false})
	}
	res := postFeedback(t, baseURL, fb)
	if res.Applied != 4 || res.Duplicates != 0 {
		t.Fatalf("feedback applied=%d dup=%d, want 4/0", res.Applied, res.Duplicates)
	}
	if _, err := ref.ApplyFeedback(fb.Labels); err != nil {
		t.Fatal(err)
	}

	// The loop continues in lockstep: labeled and leased samples are
	// never re-served, and round three still matches the reference.
	got3 := pullLabels(t, baseURL, 4, "alice")
	want3 := refNext(4, "alice")
	if !reflect.DeepEqual(responseKeys(got3), batchKeys(want3)) {
		t.Fatalf("post-feedback pull diverges from the reference trace:\n got %+v\nwant %+v",
			responseKeys(got3), batchKeys(want3))
	}
	for _, k := range responseKeys(got3) {
		if seen[k] {
			t.Fatalf("sample %+v re-served while labeled or leased", k)
		}
	}

	var stats labelsvc.Stats
	if err := json.Unmarshal(getRaw(t, baseURL, "/v1/labels/stats"), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Labeled != 4 || stats.ErrorsFound != 4 || stats.Served != 12 || stats.Round != 3 {
		t.Fatalf("stats = %+v, want labeled=4 errors=4 served=12 round=3", stats)
	}
	metrics := getMetrics(t, baseURL)
	for _, m := range []string{
		"omg_collector_labels_served_total 12",
		"omg_collector_labels_feedback_total 4",
		"omg_collector_labels_round 3",
	} {
		if !strings.Contains(metrics, m) {
			t.Fatalf("metrics missing %q:\n%s", m, metrics)
		}
	}
}

// TestEndToEndLabelStateSurvivesKill SIGKILLs a -store=disk server mid-
// loop and requires the labels endpoints to answer byte-identically after
// restart: selector round state, leases and the labeled set all recover.
func TestEndToEndLabelStateSurvivesKill(t *testing.T) {
	needBinaries(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	diskArgs := []string{"-store", "disk", "-data-dir", dataDir, "-label-seed", "7"}
	baseURL, server := startServer(t, diskArgs...)

	postWireBatch(t, baseURL, export.Batch{Version: export.WireVersion, Source: "edge-01", Seq: 1, Violations: labelViolations("cam-0", 8)})
	postWireBatch(t, baseURL, export.Batch{Version: export.WireVersion, Source: "edge-02", Seq: 1, Violations: labelViolations("cam-1", 8)})

	b1 := pullLabels(t, baseURL, 4, "alice")
	if b1.Count != 4 {
		t.Fatalf("pre-crash pull count = %d, want 4", b1.Count)
	}
	res := postFeedback(t, baseURL, export.LabelsFeedbackRequest{Labels: []labelsvc.Feedback{
		{SampleKey: b1.Candidates[0].SampleKey, Label: "error", ModelCorrect: false},
		{SampleKey: b1.Candidates[1].SampleKey, Label: "ok", ModelCorrect: true},
	}})
	if res.Applied != 2 {
		t.Fatalf("feedback applied = %d, want 2", res.Applied)
	}
	wantStats := getRaw(t, baseURL, "/v1/labels/stats")

	// SIGKILL: no shutdown hook runs; recovery must come entirely from
	// the labels.json state file persisted on every mutation.
	server.Process.Kill()
	server.Wait()

	baseURL2, server2 := startServer(t, diskArgs...)
	defer stopServer(t, server2)
	if got := getRaw(t, baseURL2, "/v1/labels/stats"); !bytes.Equal(got, wantStats) {
		t.Fatalf("label stats changed across the crash:\n got %s\nwant %s", got, wantStats)
	}

	// The two unlabeled candidates from alice's batch are still leased to
	// her after the crash: a second puller must not receive them.
	stillLeased := map[labelsvc.SampleKey]bool{
		b1.Candidates[2].SampleKey: true,
		b1.Candidates[3].SampleKey: true,
	}
	b2 := pullLabels(t, baseURL2, 16, "bob")
	if b2.Count == 0 {
		t.Fatal("post-crash pull served nothing")
	}
	for _, k := range responseKeys(b2) {
		if stillLeased[k] {
			t.Fatalf("sample %+v double-leased after crash recovery", k)
		}
	}
}

// TestEndToEndMonitorReplayFeedsLabelLoop replays the seed domain through
// omg-monitor's HTTP exporter and labels the resulting pool over the
// collector's endpoints — the whole deployment loop in one pass.
func TestEndToEndMonitorReplayFeedsLabelLoop(t *testing.T) {
	needBinaries(t)
	baseURL, server := startServer(t, "-label-seed", "42")
	defer stopServer(t, server)

	out, err := exec.Command(monitorBin,
		"-frames", "200", "-sink", "http", "-export-url", baseURL, "-export-batch", "32",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("omg-monitor failed: %v\n%s", err, out)
	}
	if recordedTotal(t, out) == 0 {
		t.Fatal("the night-street domain should fire violations")
	}

	got := pullLabels(t, baseURL, 8, "labeler")
	if got.Count == 0 || got.Round != 1 {
		t.Fatalf("replayed pool served count=%d round=%d, want >0 in round 1", got.Count, got.Round)
	}
	fb := export.LabelsFeedbackRequest{Version: export.WireVersion}
	for _, c := range got.Candidates {
		if c.TopAssertion == "" || c.MaxSeverity <= 0 {
			t.Fatalf("candidate missing assembled features: %+v", c)
		}
		fb.Labels = append(fb.Labels, labelsvc.Feedback{SampleKey: c.SampleKey, ModelCorrect: false})
	}
	if res := postFeedback(t, baseURL, fb); res.Applied != got.Count {
		t.Fatalf("feedback applied = %d, want %d", res.Applied, got.Count)
	}
	var stats labelsvc.Stats
	if err := json.Unmarshal(getRaw(t, baseURL, "/v1/labels/stats"), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Labeled != got.Count || stats.ErrorsFound != int64(got.Count) {
		t.Fatalf("stats = %+v, want %d labeled errors", stats, got.Count)
	}
}

// TestEndToEndHealthzDrainsOnShutdown: with -drain, a SIGTERM'd server
// keeps its listener answering while /healthz reports 503, so load
// balancers can drain the instance before the port goes away.
func TestEndToEndHealthzDrainsOnShutdown(t *testing.T) {
	needBinaries(t)
	baseURL, server := startServer(t, "-drain", "2s")
	if err := server.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	saw503 := false
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(baseURL + "/healthz")
		if err != nil {
			break // listener already closed
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			saw503 = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !saw503 {
		t.Fatal("healthz never reported 503 during the shutdown drain")
	}
	if err := server.Wait(); err != nil {
		t.Fatalf("omg-server exited uncleanly after the drain: %v", err)
	}
}
