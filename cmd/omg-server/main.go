// Command omg-server is the collector side of networked monitoring: it
// ingests violation batches exported by edge monitors (omg-monitor
// -sink=http, or any client speaking the internal/export wire format)
// into a sharded set of recorders and serves aggregate and per-violation
// queries — the central dashboard feed of the paper's deployment story
// (§2.3).
//
// Endpoints:
//
//	POST /v1/violations        ingest one wire batch (exactly-once per source+seq)
//	GET  /v1/summary           per-assertion firing counts + totals
//	GET  /v1/violations/query  retained violations, ?assertion= ?stream= ?limit=
//	GET  /v1/violations/tail   SSE live tail, ?assertion= ?stream= (violation + weaklabel events)
//	GET  /v1/labels/next       lease the next labeling batch, ?budget= ?puller=
//	POST /v1/labels/feedback   post labels back: releases leases, rewards the selector
//	GET  /v1/labels/stats      label loop summary
//	GET  /healthz              liveness (503 once shutdown has begun)
//	GET  /metrics              Prometheus text format
//
// The labels endpoints close the paper's active-learning loop (§3): the
// collector assembles per-sample candidates from the retained violations,
// ranks them with -label-selector (BAL by default; ccmab, uncertainty,
// uniform-ma, random), and leases budgeted, per-assertion-diverse batches
// for -lease-ttl so two pullers never hold the same sample. With
// -store=disk the selector's round state, the leases and the labeled set
// persist under -data-dir and survive SIGKILL.
//
// Ingest fan-in scales with -shards: batches route by source, so
// concurrent senders append to independent recorders. -retain-age and
// -retain-per-assertion age out the queryable log (evictions are counted
// in /metrics; aggregate counts stay complete), compacted every
// -compact-every.
//
// With -snapshot PATH the server loads its state from PATH at startup (if
// the file exists) and persists it there on shutdown — SIGTERM/SIGINT or
// a serve error, either way through the same persist sequence — and
// additionally every -snapshot-every when set, so a crash loses at most
// one period. -log streams ingested violations to a local JSONL file,
// size-rotated at 64 MiB with 3 rotated files retained.
//
// With -store=disk the collector's violation log itself lives on disk:
// every shard appends to segment files under -data-dir (rolled at
// -segment-bytes) and dedup marks go to a write-ahead log, so a SIGKILL'd
// server restarts to its exact pre-crash state — counts, retained
// violations and exactly-once dedup marks — with no snapshot needed.
// -snapshot remains useful as a portable export; a stale one can never
// roll the disk store back.
//
// Usage:
//
//	omg-server [-addr :9077] [-retain N] [-shards N]
//	           [-retain-age DUR] [-retain-per-assertion N] [-compact-every DUR]
//	           [-snapshot state.json] [-snapshot-every DUR]
//	           [-log violations.jsonl]
//	           [-store mem|disk] [-data-dir DIR] [-segment-bytes N]
//	           [-label-selector bal|ccmab|uncertainty|uniform-ma|random]
//	           [-label-seed N] [-label-budget N] [-lease-ttl DUR]
//	           [-wire-accept json,binary] [-drain DUR] [-debug-addr :PORT]
//	           [-rate-limit BYTES/S] [-burst BYTES] [-max-inflight N]
//	           [-chaos-disk-full-after BYTES]
//
// -debug-addr serves net/http/pprof on a separate gated listener —
// profiling stays off the public collector port and off entirely unless
// the flag is set.
//
// -rate-limit / -burst / -max-inflight are the overload controls: over
// budget or over capacity, ingest answers 429 with a Retry-After the
// sinks honor, every rejection is counted by reason in /metrics, and
// retries of already-applied batches are still acknowledged so
// throttling never wedges a sender's dedup window. A disk store that
// stops accepting writes (ENOSPC — or -chaos-disk-full-after, which
// injects it deterministically for chaos drills) latches the collector
// degraded: ingest answers 503, /healthz reports it, queries keep
// serving from memory.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"omg/internal/assertion"
	"omg/internal/export"
	"omg/internal/labelsvc"
	"omg/internal/obs"
)

func main() {
	addr := flag.String("addr", ":9077", "listen address (host:port; port 0 picks a free port)")
	retain := flag.Int("retain", 100000, "violations to retain in memory for queries, across all shards (0 = unbounded)")
	shards := flag.Int("shards", 1, "ingest shards; batches route by source so concurrent senders do not contend on one recorder")
	retainAge := flag.Duration("retain-age", 0, "evict retained violations older than this, by ingest time (0 = no age bound)")
	retainPer := flag.Int("retain-per-assertion", 0, "keep only the newest N retained violations per assertion (0 = no cap)")
	compactEvery := flag.Duration("compact-every", 30*time.Second, "retention compaction period (with -retain-age or -retain-per-assertion)")
	snapshot := flag.String("snapshot", "", "state snapshot path: loaded at startup, written on shutdown")
	snapshotEvery := flag.Duration("snapshot-every", 0, "also persist -snapshot on this period (0 = only on shutdown)")
	logPath := flag.String("log", "", "also stream ingested violations to this JSONL file (size-rotated at 64 MiB, 3 rotations kept)")
	storeKind := flag.String("store", export.StoreMem, "violation store backend: mem (in-memory) or disk (crash-recoverable segment files under -data-dir)")
	dataDir := flag.String("data-dir", "", "data directory for -store=disk (created if missing)")
	segmentBytes := flag.Int64("segment-bytes", 0, "target size of one on-disk segment file for -store=disk (0 = 64 MiB default)")
	labelSelector := flag.String("label-selector", "bal", "label-selection strategy: bal, ccmab, uncertainty, uniform-ma or random")
	labelSeed := flag.Int64("label-seed", 1, "seed for the label selector's per-round RNG derivation")
	labelBudget := flag.Int("label-budget", 16, "default /v1/labels/next batch size when the pull names no ?budget=")
	leaseTTL := flag.Duration("lease-ttl", 5*time.Minute, "how long a served label candidate stays exclusively leased to its puller")
	wireAccept := flag.String("wire-accept", "", "comma-separated wire codecs ingest accepts (json,binary); empty accepts all — requests in other formats get 415 and capable senders fall back")
	rateLimit := flag.Int64("rate-limit", 0, "per-source ingest byte budget per second; senders over it get 429 with Retry-After (0 = no rate limit)")
	rateBurst := flag.Int64("burst", 0, "per-source ingest burst allowance in bytes for -rate-limit (0 = one second's worth)")
	maxInflight := flag.Int("max-inflight", 0, "concurrent ingest requests admitted before newest arrivals are shed with 429 (0 = unbounded)")
	chaosDiskFullAfter := flag.Int64("chaos-disk-full-after", 0, "fault injection for -store=disk: fail segment writes with ENOSPC once this many bytes have been written, degrading ingest to 503 (0 = off; chaos testing only)")
	drain := flag.Duration("drain", 0, "after a shutdown signal, keep the listener answering (with /healthz reporting 503) this long so load balancers drain the instance first")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (gated: off unless set)")
	flag.Parse()
	if *retain < 0 {
		log.Fatalf("-retain must be >= 0")
	}
	if *shards < 1 {
		log.Fatalf("-shards must be >= 1")
	}
	if *retainAge < 0 || *retainPer < 0 || *compactEvery <= 0 || *snapshotEvery < 0 {
		log.Fatalf("retention and snapshot periods must not be negative")
	}
	if *segmentBytes < 0 {
		log.Fatalf("-segment-bytes must be >= 0")
	}
	if *storeKind == export.StoreDisk && *dataDir == "" {
		log.Fatalf("-store=disk requires -data-dir")
	}
	if *labelBudget < 1 {
		log.Fatalf("-label-budget must be >= 1")
	}
	if *leaseTTL <= 0 {
		log.Fatalf("-lease-ttl must be positive")
	}
	if *drain < 0 {
		log.Fatalf("-drain must be >= 0")
	}
	if *rateLimit < 0 || *rateBurst < 0 || *maxInflight < 0 || *chaosDiskFullAfter < 0 {
		log.Fatalf("-rate-limit, -burst, -max-inflight and -chaos-disk-full-after must be >= 0")
	}

	var acceptWire []string
	if *wireAccept != "" {
		for _, name := range strings.Split(*wireAccept, ",") {
			if name = strings.TrimSpace(name); name != "" {
				acceptWire = append(acceptWire, name)
			}
		}
	}

	c, err := export.OpenCollector(export.CollectorConfig{
		Retain:              *retain,
		Shards:              *shards,
		RetainAge:           *retainAge,
		RetainPerAssertion:  *retainPer,
		CompactEvery:        *compactEvery,
		Store:               *storeKind,
		DataDir:             *dataDir,
		SegmentBytes:        *segmentBytes,
		AcceptWire:          acceptWire,
		RateLimitBytes:      *rateLimit,
		RateBurstBytes:      *rateBurst,
		MaxInflight:         *maxInflight,
		StoreFailAfterBytes: *chaosDiskFullAfter,
		Labels: labelsvc.Config{
			Selector:      *labelSelector,
			Seed:          *labelSeed,
			DefaultBudget: *labelBudget,
			LeaseTTL:      *leaseTTL,
		},
	})
	if err != nil {
		log.Fatalf("open collector: %v", err)
	}
	if *storeKind == export.StoreDisk {
		log.Printf("disk store at %s: recovered %d violations", *dataDir, c.TotalFired())
	}
	if *snapshot != "" {
		s, err := export.ReadSnapshotFile(*snapshot)
		switch {
		case err == nil:
			c.Restore(s)
			log.Printf("restored snapshot %s: %d violations across %d sources",
				*snapshot, c.TotalFired(), len(s.LastSeq))
		case errors.Is(err, fs.ErrNotExist):
			log.Printf("no snapshot at %s yet; starting fresh", *snapshot)
		default:
			// A corrupt or version-mismatched snapshot must not be
			// silently discarded (and later overwritten) — refuse to start.
			log.Fatalf("load snapshot: %v", err)
		}
	}
	if *logPath != "" {
		s, err := assertion.NewRotatingFileSink(*logPath, 0, 3)
		if err != nil {
			log.Fatalf("open violation log: %v", err)
		}
		c.AttachSink(s)
	}

	// writeSnap serialises snapshot writes: the periodic snapshotter and
	// the final shutdown write must never interleave on the same path.
	var snapMu sync.Mutex
	writeSnap := func() error {
		snapMu.Lock()
		defer snapMu.Unlock()
		return export.WriteSnapshotFile(*snapshot, c.Snapshot())
	}
	snapStop := make(chan struct{})
	var snapWG sync.WaitGroup
	if *snapshot != "" && *snapshotEvery > 0 {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			t := time.NewTicker(*snapshotEvery)
			defer t.Stop()
			for {
				select {
				case <-snapStop:
					return
				case <-t.C:
					if err := writeSnap(); err != nil {
						log.Printf("periodic snapshot: %v", err)
					}
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	// Full-connection timeouts so a stalled or malicious peer cannot hold
	// a connection (and its handler goroutine) forever: slow-read bodies
	// die with ReadTimeout, slow-write responses with WriteTimeout, idle
	// keep-alives with IdleTimeout. The SSE tail endpoint is exempt from
	// WriteTimeout — it lifts the deadline itself via
	// http.ResponseController and polices its own per-write grace.
	srv := &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	// The resolved address line is the startup handshake: scripts (and the
	// e2e tests) scrape it to learn the port when -addr ends in :0.
	fmt.Printf("omg-server listening on %s\n", ln.Addr())

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("listen debug %s: %v", *debugAddr, err)
		}
		fmt.Printf("omg-server debug on http://%s/debug/pprof/\n", dln.Addr())
		go func() {
			dsrv := &http.Server{
				Handler:           obs.NewDebugMux(),
				ReadHeaderTimeout: 10 * time.Second,
				ReadTimeout:       time.Minute,
				// Long enough for a 30s CPU or trace profile to stream out.
				WriteTimeout: 2 * time.Minute,
				IdleTimeout:  2 * time.Minute,
			}
			if err := dsrv.Serve(dln); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	exitCode := 0
	select {
	case sig := <-stop:
		log.Printf("received %s; shutting down", sig)
		if *drain > 0 {
			// Flip /healthz to 503 (Quiesce marks the collector closing)
			// and keep serving so load balancers notice and stop routing
			// here before the listener goes away.
			c.Quiesce()
			time.Sleep(*drain)
		}
	case err := <-errCh:
		// A serve failure must exit through the same persist sequence as
		// SIGTERM: everything ingested so far (and the dedup marks) still
		// reaches the snapshot and the violation log.
		log.Printf("serve: %v; shutting down", err)
		exitCode = 1
	}

	close(snapStop)
	snapWG.Wait()
	// Quiesce before Shutdown (tail streams never end on their own, so
	// Shutdown would wait out its whole deadline on them), but keep the
	// -log sink attached until the drain finishes: ingests still in
	// flight during Shutdown must reach the durable log too.
	c.Quiesce()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := c.Close(); err != nil {
		log.Printf("violation log: %v", err)
		exitCode = 1
	}
	if *snapshot != "" {
		if err := writeSnap(); err != nil {
			log.Printf("write snapshot: %v", err)
			exitCode = 1
		} else {
			log.Printf("snapshot persisted to %s", *snapshot)
		}
	}
	os.Exit(exitCode)
}
