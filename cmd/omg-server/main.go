// Command omg-server is the collector side of networked monitoring: it
// ingests violation batches exported by edge monitors (omg-monitor
// -sink=http, or any client speaking the internal/export wire format)
// into one recorder and serves aggregate and per-violation queries — the
// central dashboard feed of the paper's deployment story (§2.3).
//
// Endpoints:
//
//	POST /v1/violations        ingest one wire batch (exactly-once per source+seq)
//	GET  /v1/summary           per-assertion firing counts + totals
//	GET  /v1/violations/query  retained violations, ?assertion= ?stream= ?limit=
//	GET  /healthz              liveness
//	GET  /metrics              Prometheus text format
//
// With -snapshot PATH the server loads its state from PATH at startup (if
// the file exists) and persists it there on SIGTERM/SIGINT, so a restart
// neither loses counts nor re-applies batches retried across it. -log
// additionally streams ingested violations to a local JSONL file,
// size-rotated at 64 MiB with 3 rotated files retained (the durable log
// is bounded, like the in-memory one; older violations rotate away).
//
// Usage:
//
//	omg-server [-addr :9077] [-retain N] [-snapshot state.json]
//	           [-log violations.jsonl]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"omg/internal/assertion"
	"omg/internal/export"
)

func main() {
	addr := flag.String("addr", ":9077", "listen address (host:port; port 0 picks a free port)")
	retain := flag.Int("retain", 100000, "violations to retain in memory for queries (0 = unbounded)")
	snapshot := flag.String("snapshot", "", "state snapshot path: loaded at startup, written on SIGTERM/SIGINT")
	logPath := flag.String("log", "", "also stream ingested violations to this JSONL file (size-rotated at 64 MiB, 3 rotations kept)")
	flag.Parse()
	if *retain < 0 {
		log.Fatalf("-retain must be >= 0")
	}

	c := export.NewCollector(*retain)
	if *snapshot != "" {
		s, err := export.ReadSnapshotFile(*snapshot)
		switch {
		case err == nil:
			c.Restore(s)
			log.Printf("restored snapshot %s: %d violations across %d sources",
				*snapshot, s.Recorder.TotalFired(), len(s.LastSeq))
		case errors.Is(err, fs.ErrNotExist):
			log.Printf("no snapshot at %s yet; starting fresh", *snapshot)
		default:
			// A corrupt or version-mismatched snapshot must not be
			// silently discarded (and later overwritten) — refuse to start.
			log.Fatalf("load snapshot: %v", err)
		}
	}
	var fileSink *assertion.RotatingFileSink
	if *logPath != "" {
		s, err := assertion.NewRotatingFileSink(*logPath, 0, 3)
		if err != nil {
			log.Fatalf("open violation log: %v", err)
		}
		fileSink = s
		c.Recorder().StreamToSink(s)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	srv := &http.Server{Handler: c.Handler(), ReadHeaderTimeout: 10 * time.Second}
	// The resolved address line is the startup handshake: scripts (and the
	// e2e tests) scrape it to learn the port when -addr ends in :0.
	fmt.Printf("omg-server listening on %s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-stop:
		log.Printf("received %s; shutting down", sig)
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	exitCode := 0
	if fileSink != nil {
		// Detach before closing so late ingests cannot race the close.
		c.Recorder().Close()
		if err := c.Recorder().Err(); err != nil {
			log.Printf("violation log: %v", err)
			exitCode = 1
		}
	}
	if *snapshot != "" {
		if err := export.WriteSnapshotFile(*snapshot, c.Snapshot()); err != nil {
			log.Printf("write snapshot: %v", err)
			exitCode = 1
		} else {
			log.Printf("snapshot persisted to %s", *snapshot)
		}
	}
	os.Exit(exitCode)
}
